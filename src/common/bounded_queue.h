#ifndef TCOB_COMMON_BOUNDED_QUEUE_H_
#define TCOB_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tcob {

/// Bounded blocking multi-producer/single-consumer queue — the channel
/// between streaming producers (fan-out workers, the cursor's executor
/// thread) and the one consumer draining a query result.
///
/// Capacity is *weighted*: each item carries a weight (the cursor pushes
/// row batches weighted by their row count), and Push blocks while the
/// queued weight would exceed the capacity — that blocking is the
/// backpressure which keeps a slow consumer's memory flat no matter how
/// large the result is. An item heavier than the whole capacity is
/// admitted alone into an empty queue, so oversized batches stall but
/// never deadlock.
///
/// Shutdown protocol:
///  * every producer calls CloseProducer(status) exactly once; the first
///    non-OK status wins and is what the consumer sees after draining;
///  * Pop returns items until the queue is empty *and* all producers
///    have closed, then returns nullopt — the consumer then reads
///    producer_status() for the stream's fate;
///  * a consumer abandoning early calls CloseConsumer(); pending and
///    future Push calls drop their item and return false, which
///    producers treat as "stop producing". Items already queued are
///    destroyed with the queue.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` is the maximum queued weight (> 0); `producers` is how
  /// many CloseProducer calls end the stream.
  explicit BoundedQueue(size_t capacity, size_t producers = 1)
      : capacity_(capacity == 0 ? 1 : capacity), producers_open_(producers) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until the item fits (or the queue empties, for oversized
  /// items). Returns false — dropping the item — once the consumer has
  /// closed; the producer should stop then.
  bool Push(T item, size_t weight = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return consumer_closed_ || items_.empty() ||
             weight_ + weight <= capacity_;
    });
    if (consumer_closed_) return false;
    items_.emplace_back(std::move(item), weight);
    weight_ += weight;
    if (weight_ > peak_weight_) peak_weight_ = weight_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt = every producer closed
  /// and the queue is drained (end of stream).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return !items_.empty() || producers_open_ == 0;
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front().first);
    weight_ -= items_.front().second;
    items_.pop_front();
    not_full_.notify_all();
    return item;
  }

  /// Ends this producer's side of the stream. The first non-OK status
  /// sticks and is reported by producer_status().
  void CloseProducer(Status status = Status::OK()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (producer_status_.ok() && !status.ok()) {
      producer_status_ = std::move(status);
    }
    if (producers_open_ > 0) --producers_open_;
    if (producers_open_ == 0) not_empty_.notify_all();
  }

  /// Consumer abandons the stream: unblocks all producers, whose Push
  /// calls return false from now on.
  void CloseConsumer() {
    std::lock_guard<std::mutex> lock(mu_);
    consumer_closed_ = true;
    not_full_.notify_all();
  }

  /// First non-OK status any producer closed with (OK = clean stream).
  /// Complete once Pop has returned nullopt.
  Status producer_status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return producer_status_;
  }

  /// High-water mark of the queued weight — with row-weighted batches,
  /// the most rows that were ever buffered at once.
  size_t peak_weight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_weight_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;   // producers: weight may fit now
  std::condition_variable not_empty_;  // consumer: item or end of stream
  std::deque<std::pair<T, size_t>> items_;
  size_t weight_ = 0;
  size_t peak_weight_ = 0;
  const size_t capacity_;
  size_t producers_open_;
  bool consumer_closed_ = false;
  Status producer_status_ = Status::OK();
};

}  // namespace tcob

#endif  // TCOB_COMMON_BOUNDED_QUEUE_H_
