#ifndef TCOB_COMMON_HASH_H_
#define TCOB_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>

namespace tcob {

/// FNV-1a 64-bit hash; used for WAL framing checksums and hash tables.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint32_t Checksum32(const void* data, size_t len) {
  uint64_t h = Fnv1a64(data, len);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

/// CRC-32C (Castagnoli), table-driven software implementation; used for
/// the per-page checksum footers. `seed` chains incremental updates.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace tcob

#endif  // TCOB_COMMON_HASH_H_
