#ifndef TCOB_COMMON_LOGGING_H_
#define TCOB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace tcob {

/// kSilent is a filter-only level (never passed to TCOB_LOG): setting it
/// as the minimum drops every message, which fault-injection tests use
/// to mute the expected error spam of thousands of induced crashes.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// One log event, pre-formatting. `formatted` in the sink callback is
/// the exact line the stderr path would emit (including trailing '\n').
struct LogEntry {
  LogLevel level;
  const char* file;  // full path as given by __FILE__
  int line;
  std::string message;
};

/// Redirects log output. While a sink is installed, stderr is bypassed
/// and every line that passes the level filter is handed to the sink
/// (serialized under an internal mutex, so sinks need no locking of
/// their own). Pass nullptr to restore stderr output.
using LogSink = std::function<void(const LogEntry&, const std::string& formatted)>;
void SetLogSink(LogSink sink);

/// Writes one formatted line — "[<ISO-8601 UTC> LEVEL t<tid> file:line] msg" —
/// with a single fwrite so concurrent threads never interleave output.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

/// Stream-style collector used by the TCOB_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace tcob

#define TCOB_LOG(level) \
  ::tcob::internal::LogStream(::tcob::LogLevel::level, __FILE__, __LINE__)

/// Fatal invariant violation: log and abort. Used only for programming
/// errors (broken internal invariants), never for expected failures.
#define TCOB_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tcob::LogMessage(::tcob::LogLevel::kError, __FILE__, __LINE__,    \
                         "CHECK failed: " #cond);                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // TCOB_COMMON_LOGGING_H_
