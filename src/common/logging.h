#ifndef TCOB_COMMON_LOGGING_H_
#define TCOB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tcob {

/// kSilent is a filter-only level (never passed to TCOB_LOG): setting it
/// as the minimum drops every message, which fault-injection tests use
/// to mute the expected error spam of thousands of induced crashes.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

/// Stream-style collector used by the TCOB_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace tcob

#define TCOB_LOG(level) \
  ::tcob::internal::LogStream(::tcob::LogLevel::level, __FILE__, __LINE__)

/// Fatal invariant violation: log and abort. Used only for programming
/// errors (broken internal invariants), never for expected failures.
#define TCOB_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tcob::LogMessage(::tcob::LogLevel::kError, __FILE__, __LINE__,    \
                         "CHECK failed: " #cond);                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // TCOB_COMMON_LOGGING_H_
