#ifndef TCOB_COMMON_CODING_H_
#define TCOB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace tcob {

// Little-endian fixed-width encodings plus LEB128-style varints, and
// memcmp-orderable big-endian "comparable" encodings for index keys.
// All Get* functions consume from a Slice and fail with Corruption on
// underflow rather than reading out of bounds.

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

void EncodeFixed16(char* buf, uint16_t v);
void EncodeFixed32(char* buf, uint32_t v);
void EncodeFixed64(char* buf, uint64_t v);

uint16_t DecodeFixed16(const char* buf);
uint32_t DecodeFixed32(const char* buf);
uint64_t DecodeFixed64(const char* buf);

Status GetFixed16(Slice* input, uint16_t* v);
Status GetFixed32(Slice* input, uint32_t* v);
Status GetFixed64(Slice* input, uint64_t* v);

/// Varint encodings (unsigned LEB128; signed via zigzag).
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
void PutVarsint64(std::string* dst, int64_t v);
Status GetVarint32(Slice* input, uint32_t* v);
Status GetVarint64(Slice* input, uint64_t* v);
Status GetVarsint64(Slice* input, int64_t* v);

/// Length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, const Slice& value);
Status GetLengthPrefixed(Slice* input, Slice* value);

/// Double as raw IEEE-754 bits (little endian).
void PutDouble(std::string* dst, double v);
Status GetDouble(Slice* input, double* v);

// ---- memcmp-orderable key encodings (big endian, order preserving) ----

/// Unsigned 64-bit, big endian: byte order == numeric order.
void PutComparableU64(std::string* dst, uint64_t v);
uint64_t DecodeComparableU64(const char* buf);

/// Signed 64-bit with flipped sign bit so byte order == numeric order.
void PutComparableI64(std::string* dst, int64_t v);
int64_t DecodeComparableI64(const char* buf);

/// IEEE-754 double mapped to a memcmp-orderable 64-bit pattern.
void PutComparableDouble(std::string* dst, double v);
double DecodeComparableDouble(const char* buf);

/// Number of bytes PutVarint64 would emit for v.
int VarintLength(uint64_t v);

}  // namespace tcob

#endif  // TCOB_COMMON_CODING_H_
