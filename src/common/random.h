#ifndef TCOB_COMMON_RANDOM_H_
#define TCOB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace tcob {

/// Deterministic xorshift128+ PRNG for workloads and tests.
///
/// Not cryptographic; chosen for reproducibility across platforms so that
/// benchmark workloads are identical run to run.
class Random {
 public:
  explicit Random(uint64_t seed) {
    s0_ = seed ? seed : 0x9e3779b97f4a7c15ull;
    s1_ = SplitMix(&s0_);
    s0_ = SplitMix(&s1_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII string of length n.
  std::string NextString(size_t n) {
    std::string s(n, 'a');
    for (size_t i = 0; i < n; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

  /// Zipf-ish skewed pick in [0, n): lower indices more likely.
  uint64_t Skewed(uint64_t n) {
    uint64_t shift = Uniform(64);
    uint64_t v = Next() >> shift;
    return n ? v % n : 0;
  }

  /// An independent child stream seeded from this one. Deterministic:
  /// forking consumes exactly one draw, and the child's sequence is
  /// decorrelated from the parent's by the SplitMix seeding. This is
  /// the only sanctioned way to hand a seed to another thread or
  /// component — never std::random_device or wall-clock seeding, which
  /// would break seed-reproducible workloads (enforced by the sim
  /// harness's bit-reproducibility check).
  Random Fork() { return Random(Next()); }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace tcob

#endif  // TCOB_COMMON_RANDOM_H_
