#include "common/resource_budget.h"

#include <chrono>

namespace tcob {

Status AdmissionController::Acquire(const QueryContext* ctx,
                                    uint64_t timeout_micros) {
  if (max_inflight_ == 0) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < max_inflight_) {
    ++inflight_;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // The wait is bounded twice over: by the admission timeout and by the
  // query's own deadline (whichever is sooner), and a cancel wakes it
  // via the periodic re-check below.
  auto wait_deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(timeout_micros);
  if (ctx != nullptr && ctx->has_deadline() &&
      ctx->deadline() < wait_deadline) {
    wait_deadline = ctx->deadline();
  }

  ++waiting_;
  if (waiting_ > peak_waiting_) peak_waiting_ = waiting_;
  const auto wait_start = std::chrono::steady_clock::now();
  TraceEmit(trace_, TraceEventType::kAdmissionEnqueue, waiting_);
  Status out = Status::OK();
  for (;;) {
    if (ctx != nullptr) {
      Status s = ctx->Check();
      if (!s.ok()) {
        out = s;
        break;
      }
    }
    if (inflight_ < max_inflight_) {
      ++inflight_;
      break;
    }
    // Re-check the cancel token at least every 10ms even if no slot
    // frees — Cancel() does not signal this condition variable.
    auto next_check = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(10);
    auto until = next_check < wait_deadline ? next_check : wait_deadline;
    if (slot_free_.wait_until(lock, until) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= wait_deadline) {
      if (inflight_ < max_inflight_) {
        ++inflight_;
        break;
      }
      out = Status::DeadlineExceeded(
          "admission wait exceeded " + std::to_string(timeout_micros) +
          "us (" + std::to_string(max_inflight_) + " queries in flight)");
      break;
    }
  }
  --waiting_;
  const uint64_t waited_us =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - wait_start)
                                .count());
  if (out.ok()) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    TraceEmit(trace_, TraceEventType::kAdmissionGrant, waited_us);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    TraceEmit(trace_, TraceEventType::kAdmissionTimeout, waited_us);
  }
  return out;
}

void AdmissionController::Release() {
  if (max_inflight_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) --inflight_;
  }
  slot_free_.notify_one();
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

size_t AdmissionController::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_waiting_;
}

}  // namespace tcob
