#include "common/hash.h"

#include <array>

namespace tcob {

namespace {

/// CRC-32C lookup table (polynomial 0x1EDC6F41, reflected 0x82F63B78).
std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tcob
