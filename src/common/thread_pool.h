#ifndef TCOB_COMMON_THREAD_POOL_H_
#define TCOB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcob {

/// Fixed-size pool of worker threads for intra-query read parallelism.
///
/// Deliberately minimal — no work stealing, no futures: a coordinator
/// hands over a closed batch of tasks and blocks until all of them have
/// finished (RunAll), or splits the hand-over into Submit + Wait when it
/// wants to consume the tasks' output while they run (the streaming
/// fan-out). Tasks must not throw and must confine their writes to
/// disjoint state (the materializer gives every task its own version
/// cache and its own output channel).
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Runs every task on the pool; returns when all have completed.
  /// Concurrent RunAll calls are safe (each waits for its own batch),
  /// but tasks of different batches share the worker threads.
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Handle of one in-flight batch; must be Wait()ed before destruction.
  class BatchHandle;

  /// Enqueues the tasks and returns immediately — the coordinator can
  /// drain the tasks' output channels while they run. Pair every Submit
  /// with exactly one Wait.
  BatchHandle Submit(std::vector<std::function<void()>> tasks);

  /// Blocks until every task of the batch has completed.
  void Wait(BatchHandle& handle);

 private:
  void WorkerLoop();

  /// One submitted batch; `remaining` counts its unfinished tasks.
  struct Batch {
    size_t remaining = 0;
  };

 public:
  class BatchHandle {
   public:
    BatchHandle() = default;
    BatchHandle(BatchHandle&&) = default;
    BatchHandle& operator=(BatchHandle&&) = default;

   private:
    friend class ThreadPool;
    /// Heap-allocated so the handle can outlive the Submit call's frame;
    /// freed by Wait (workers never touch it after remaining hits 0
    /// while holding the pool mutex).
    std::unique_ptr<Batch> batch_;
  };

 private:

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "there may be a task"
  std::condition_variable done_cv_;  // coordinators: "a batch may be done"
  std::queue<std::pair<std::function<void()>, Batch*>> queue_;
  bool stop_ = false;
};

}  // namespace tcob

#endif  // TCOB_COMMON_THREAD_POOL_H_
