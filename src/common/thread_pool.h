#ifndef TCOB_COMMON_THREAD_POOL_H_
#define TCOB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcob {

/// Fixed-size pool of worker threads for intra-query read parallelism.
///
/// Deliberately minimal — no work stealing, no futures: a coordinator
/// hands over a closed batch of tasks with RunAll() and blocks until all
/// of them have finished. Tasks must not throw and must confine their
/// writes to disjoint state (the materializer gives every task its own
/// version cache and its own output slots).
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Runs every task on the pool; returns when all have completed.
  /// Concurrent RunAll calls are safe (each waits for its own batch),
  /// but tasks of different batches share the worker threads.
  void RunAll(std::vector<std::function<void()>> tasks);

 private:
  void WorkerLoop();

  /// One submitted batch; `remaining` counts its unfinished tasks.
  struct Batch {
    size_t remaining = 0;
  };

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "there may be a task"
  std::condition_variable done_cv_;  // coordinators: "a batch may be done"
  std::queue<std::pair<std::function<void()>, Batch*>> queue_;
  bool stop_ = false;
};

}  // namespace tcob

#endif  // TCOB_COMMON_THREAD_POOL_H_
