#ifndef TCOB_COMMON_STATUS_H_
#define TCOB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace tcob {

/// Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kOutOfRange = 7,
  kInternal = 8,
  kResourceExhausted = 9,
  kParseError = 10,
  kTypeError = 11,
  kDeadlineExceeded = 12,
  kCancelled = 13,
  kTxnConflict = 14,
  kFailedPrecondition = 15,
};

/// Returns a human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// TCOB never throws on expected failure paths; every fallible API returns
/// a Status (or a Result<T>, see result.h). The OK path carries no
/// allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsTxnConflict() const { return code_ == StatusCode::kTxnConflict; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK Status to the caller.
#define TCOB_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::tcob::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

}  // namespace tcob

#endif  // TCOB_COMMON_STATUS_H_
