#ifndef TCOB_COMMON_TRACE_RING_H_
#define TCOB_COMMON_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_events.h"

namespace tcob {

/// Flight-recorder configuration (DatabaseOptions::trace).
struct TraceOptions {
  /// Record events. Cheap enough to leave on (one relaxed load when the
  /// category is masked; four relaxed stores when it records).
  bool enabled = true;
  /// Ring capacity per recording thread, in bytes (32 bytes per event).
  /// The ring overwrites its oldest event when full — recording never
  /// blocks and never allocates past the ring itself.
  uint64_t ring_bytes = 128 * 1024;
  /// Bitmask of kTraceCat* bits to record.
  uint32_t categories = kTraceCatAll;
  /// Write an automatic dump next to the database (or into dump_dir)
  /// when the instance degrades to read-only or failed.
  bool dump_on_failure = true;
  /// Directory for automatic failure dumps; empty = the database dir.
  std::string dump_dir;
};

/// One decoded flight-recorder event (the Snapshot() view).
struct TraceEvent {
  uint64_t ts_us = 0;
  uint32_t tid = 0;
  TraceEventType type = TraceEventType::kQueryBegin;
  uint64_t query_id = 0;
  uint64_t arg = 0;
};

/// Always-on flight recorder: a lock-free ring of typed events per
/// recording thread.
///
/// Writers never block and never wait for readers: each thread owns a
/// single-writer ring of fixed 32-byte slots (4 atomic words) and
/// overwrites its oldest event when full, counting the drop per
/// category. The hot path is one relaxed mask load when the category is
/// off, and four relaxed stores plus one release store (publishing the
/// slot) when it records — cheap enough to leave enabled in production.
///
/// Readers (DumpJson, Snapshot) run concurrently with writers: they
/// acquire-load a ring's head, copy the window of published slots, then
/// re-read the head and discard any slot the writer may have lapped in
/// the meantime. The result is a consistent suffix of each thread's
/// events with no locks on the writer side (TSan-clean: every shared
/// word is atomic).
///
/// Timestamps are steady-clock microseconds; thread ids are small
/// process-wide ordinals (stable for the life of the thread); the query
/// id is ambient per thread (TraceQueryScope), so deep subsystems
/// (pool, WAL) attribute their events without plumbing.
class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceOptions& options);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// True when events of `cat_bits` (any bit) would be recorded now.
  bool enabled(uint32_t cat_bits) const {
    return (live_mask_.load(std::memory_order_relaxed) & cat_bits) != 0;
  }

  /// Records one event, stamped with now / this thread / the ambient
  /// query id. A no-op (one relaxed load) when the type's category is
  /// masked or the recorder is off.
  void Emit(TraceEventType type, uint64_t arg = 0);

  /// Emit with an explicit timestamp and query id — the deterministic
  /// hook for byte-stable dump tests. Same masking as Emit.
  void EmitAt(uint64_t ts_us, TraceEventType type, uint64_t arg = 0,
              uint64_t query_id = 0);

  /// Master switch; categories() is preserved across off/on.
  void set_enabled(bool on);
  bool is_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Replaces the category mask (effective immediately when enabled).
  void set_categories(uint32_t mask);
  uint32_t categories() const {
    return configured_mask_.load(std::memory_order_relaxed);
  }

  /// Consistent-suffix copy of every thread's ring, merged and sorted
  /// by timestamp (ties keep per-thread program order).
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome/Perfetto trace_event JSON of Snapshot(): spans as B/E
  /// pairs, instants as "i", one pid, the recording threads as tids.
  /// Orphaned span closes (their open was overwritten) are dropped and
  /// dangling opens are closed at the last timestamp, so every dump has
  /// strictly balanced spans. Deterministic given the event sequence.
  std::string DumpJson() const;

  /// Best-effort DumpJson() to `path` via stdio (deliberately not the
  /// database's IoEnv: failure dumps run exactly when that environment
  /// is refusing writes). False when the file cannot be written.
  bool DumpToFile(const std::string& path) const;

  uint64_t recorded(uint32_t cat_bit) const {
    return recorded_[TraceCategoryIndex(cat_bit)].value();
  }
  uint64_t dropped(uint32_t cat_bit) const {
    return dropped_[TraceCategoryIndex(cat_bit)].value();
  }

  /// Publishes per-category recorded/dropped counters under
  /// tcob_trace_<category>_{recorded,dropped}_total.
  void RegisterMetrics(MetricsRegistry* registry) const;

  /// The ambient query id of the calling thread (0 = none).
  static uint64_t ThreadQueryId();

 private:
  friend class TraceQueryScope;

  struct Ring;

  static void SetThreadQueryId(uint64_t qid);

  /// The calling thread's ring (created and registered on first use).
  Ring* RingForThisThread();

  void Record(uint64_t ts_us, TraceEventType type, uint64_t arg,
              uint64_t query_id);

  /// Process-unique recorder id: thread-local ring caches key on it, so
  /// a stale cache entry from a destroyed recorder can never be
  /// mistaken for this one.
  const uint64_t id_;
  std::atomic<bool> enabled_;
  std::atomic<uint32_t> configured_mask_;
  /// configured_mask_ when enabled, 0 when disabled — the single word
  /// the Emit fast path loads.
  std::atomic<uint32_t> live_mask_;
  const size_t ring_capacity_;  // events per ring

  /// Guards rings_ (registration and snapshot), never the Emit path.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;

  Counter recorded_[kTraceCategoryCount];
  Counter dropped_[kTraceCategoryCount];
};

/// Emits iff a recorder is attached (instrumented components hold a
/// possibly-null TraceRecorder*).
inline void TraceEmit(TraceRecorder* r, TraceEventType type,
                      uint64_t arg = 0) {
  if (r != nullptr) r->Emit(type, arg);
}

/// RAII ambient query id: set on every thread that does work for one
/// query (the statement thread, the streaming producer, each fan-out
/// worker) so events emitted anywhere below attribute to it.
class TraceQueryScope {
 public:
  explicit TraceQueryScope(uint64_t qid)
      : prev_(TraceRecorder::ThreadQueryId()) {
    TraceRecorder::SetThreadQueryId(qid);
  }
  ~TraceQueryScope() { TraceRecorder::SetThreadQueryId(prev_); }

  TraceQueryScope(const TraceQueryScope&) = delete;
  TraceQueryScope& operator=(const TraceQueryScope&) = delete;

 private:
  uint64_t prev_;
};

/// RAII begin/end pair (operator spans, checkpoint phases, ...).
class TraceScope {
 public:
  TraceScope(TraceRecorder* r, TraceEventType begin, TraceEventType end,
             uint64_t arg = 0)
      : r_(r), end_(end), arg_(arg) {
    TraceEmit(r_, begin, arg_);
  }
  ~TraceScope() { TraceEmit(r_, end_, arg_); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* r_;
  TraceEventType end_;
  uint64_t arg_;
};

/// RAII executor/worker operator span.
class TraceSpanScope : public TraceScope {
 public:
  TraceSpanScope(TraceRecorder* r, TraceSpanId span)
      : TraceScope(r, TraceEventType::kSpanBegin, TraceEventType::kSpanEnd,
                   static_cast<uint64_t>(span)) {}
};

}  // namespace tcob

#endif  // TCOB_COMMON_TRACE_RING_H_
