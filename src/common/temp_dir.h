#ifndef TCOB_COMMON_TEMP_DIR_H_
#define TCOB_COMMON_TEMP_DIR_H_

#include <string>

namespace tcob {

/// RAII temporary directory under TMPDIR (or /tmp): created on
/// construction, removed recursively on destruction. Used by tests,
/// benchmarks and examples to host throwaway databases.
class TempDir {
 public:
  TempDir();
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Absolute path; empty if creation failed.
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace tcob

#endif  // TCOB_COMMON_TEMP_DIR_H_
