#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace tcob {

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  TCOB_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    TCOB_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<uint64_t> Histogram::LatencyBucketsUs() {
  // 1-2-5 decades from 1us to 10s; queries past 10s fall into +inf.
  return {1,      2,      5,      10,      20,      50,      100,     200,
          500,    1000,   2000,   5000,    10000,   20000,   50000,   100000,
          200000, 500000, 1000000, 2000000, 5000000, 10000000};
}

void Histogram::Observe(uint64_t v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  size_t idx = static_cast<size_t>(it - bounds_.begin());  // +inf if past end
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (static_cast<double>(cum + in_bucket) >= rank && in_bucket > 0) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double into = rank - static_cast<double>(cum);
      return lower +
             (upper - lower) * (into / static_cast<double>(in_bucket));
    }
    cum += in_bucket;
  }
  // Target rank lies in the +inf bucket: the honest answer is "above the
  // largest bound"; clamp there rather than extrapolate.
  return static_cast<double>(bounds.back());
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = c;
}

void MetricsRegistry::RegisterCounterFn(const std::string& name,
                                        std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  counter_fns_[name] = std::move(fn);
}

void MetricsRegistry::RegisterGauge(const std::string& name, const Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = g;
}

void MetricsRegistry::RegisterGaugeFn(const std::string& name,
                                      std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_fns_[name] = std::move(fn);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name] = h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, fn] : counter_fns_) s.counters[name] = fn();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, fn] : gauge_fns_) s.gauges[name] = fn();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snapshot();
  return s;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    os << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    os << "# TYPE " << name << " gauge\n" << name << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "# TYPE " << name << " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      os << name << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << "\n";
    }
    cum += h.counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << name << "_sum " << h.sum << "\n";
    os << name << "_count " << h.count << "\n";
    // Bucket-interpolated estimates (same math as histogram_quantile),
    // rendered as gauges so plain-text scrapes get latency percentiles
    // without a PromQL evaluator.
    os << "# TYPE " << name << "_p50 gauge\n"
       << name << "_p50 " << h.Quantile(0.50) << "\n";
    os << "# TYPE " << name << "_p95 gauge\n"
       << name << "_p95 " << h.Quantile(0.95) << "\n";
    os << "# TYPE " << name << "_p99 gauge\n"
       << name << "_p99 " << h.Quantile(0.99) << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) os << ",";
      os << h.bounds[i];
    }
    os << "],\"counts\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i) os << ",";
      os << h.counts[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << h.Quantile(0.50) << ",\"p95\":" << h.Quantile(0.95)
       << ",\"p99\":" << h.Quantile(0.99) << "}";
  }
  os << "}}";
  return os.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tcob
