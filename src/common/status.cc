#include "common/status.h"

namespace tcob {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kTxnConflict:
      return "TxnConflict";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace tcob
