#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace tcob {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
          msg.c_str());
}

}  // namespace tcob
