#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <ctime>
#include <mutex>

namespace tcob {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

// The sink is swapped rarely (tests) but read on every log line; a
// mutex both guards the pointer and serializes sink invocations so
// test sinks can append to a plain vector.
std::mutex g_sink_mu;
LogSink g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kSilent:
      break;
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = strrchr(path, '/');
  return slash ? slash + 1 : path;
}

// Small dense thread ids (t1, t2, ...) instead of opaque pthread
// handles: stable within a process run and short enough to scan by eye.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = ++next;
  return id;
}

// ISO-8601 UTC with millisecond precision, e.g. 2026-08-07T12:34:56.789Z.
void FormatTimestamp(char* buf, size_t n) {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  tm tm_utc;
  gmtime_r(&ts.tv_sec, &tm_utc);
  size_t len = strftime(buf, n, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  snprintf(buf + len, n - len, ".%03ldZ", ts.tv_nsec / 1000000);
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char ts[40];
  FormatTimestamp(ts, sizeof(ts));
  char prefix[160];
  snprintf(prefix, sizeof(prefix), "[%s %s t%d %s:%d] ", ts, LevelName(level),
           ThreadId(), Basename(file), line);

  std::string formatted;
  formatted.reserve(strlen(prefix) + msg.size() + 1);
  formatted += prefix;
  formatted += msg;
  formatted += '\n';

  // Single fwrite of the fully assembled line: POSIX stdio streams are
  // internally locked per call, so concurrent threads cannot interleave
  // within a line. The sink, when installed, replaces stderr entirely.
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(LogEntry{level, file, line, msg}, formatted);
    return;
  }
  fwrite(formatted.data(), 1, formatted.size(), stderr);
}

}  // namespace tcob
