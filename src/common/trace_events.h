#ifndef TCOB_COMMON_TRACE_EVENTS_H_
#define TCOB_COMMON_TRACE_EVENTS_H_

#include <cstdint>

namespace tcob {

/// Category bits of the flight recorder. One bit per subsystem so
/// operators can mask the noisy ones (pool traffic dwarfs everything
/// else on a cold cache) without losing the rest. The mask lives in
/// DatabaseOptions::trace.categories and can be flipped at runtime.
enum : uint32_t {
  kTraceCatQuery = 1u << 0,       // query begin/end
  kTraceCatSpan = 1u << 1,        // executor/worker operator spans
  kTraceCatWal = 1u << 2,         // WAL append + fsync
  kTraceCatCheckpoint = 1u << 3,  // checkpoint phases
  kTraceCatTier = 1u << 4,        // cold-tier migration phases
  kTraceCatPool = 1u << 5,        // buffer-pool miss/evict/steal
  kTraceCatAdmission = 1u << 6,   // admission enqueue/grant/timeout
  kTraceCatCancel = 1u << 7,      // cancellation / deadline fire
  kTraceCatBudget = 1u << 8,      // memory-budget refusal / pressure
  kTraceCatHealth = 1u << 9,      // health-state transitions
  kTraceCatIo = 1u << 10,         // transient-I/O retries
  kTraceCatTxn = 1u << 11,        // transaction begin/commit/abort
  kTraceCatAll = (1u << 12) - 1,
};

/// Number of category bits (the recorder keeps a recorded/dropped
/// counter pair per category).
constexpr int kTraceCategoryCount = 12;

/// Lowercase name of one category *bit* ("query", "wal", ...); "?" for
/// anything that is not exactly one known bit.
const char* TraceCategoryName(uint32_t cat_bit);

/// Fixed vocabulary of the flight recorder. Every event is 32 bytes in
/// the ring: timestamp, thread id + type, query id, one argument word.
/// The argument's meaning is per type (bytes appended, span id, phase
/// id, wait micros, ...) and is documented next to each entry.
enum class TraceEventType : uint16_t {
  kQueryBegin = 1,   // span open; arg unused
  kQueryEnd,         // span close; arg = rows produced
  kSpanBegin,        // arg = TraceSpanId
  kSpanEnd,          // arg = TraceSpanId
  kWalAppend,        // instant; arg = payload bytes
  kWalFsyncBegin,    // span open; arg unused
  kWalFsyncEnd,      // span close; arg unused
  kCheckpointPhaseBegin,  // arg = TraceCheckpointPhase
  kCheckpointPhaseEnd,    // arg = TraceCheckpointPhase
  kTierPhaseBegin,   // arg = TraceTierPhase
  kTierPhaseEnd,     // arg = TraceTierPhase
  kTierSegmentBuild, // instant; arg = versions in the built segment
  kPoolMiss,         // instant; arg = (file << 32 | page)
  kPoolEvict,        // instant; arg = (file << 32 | page) evicted
  kPoolSteal,        // instant; arg unused
  kAdmissionEnqueue, // instant; arg = queue depth on arrival
  kAdmissionGrant,   // instant; arg = micros waited
  kAdmissionTimeout, // instant; arg = micros waited
  kCancelFire,       // instant; arg unused
  kDeadlineFire,     // instant; arg unused
  kBudgetRefusal,    // instant; arg = refused bytes
  kBudgetPressure,   // instant; arg = refused bytes
  kHealthTransition, // instant; arg = HealthState ordinal
  kIoRetry,          // instant; arg = failed attempts so far
  kTxnBegin,         // instant; arg = txn id
  kTxnCommit,        // instant; arg = txn id
  kTxnAbort,         // instant; arg = txn id
  kTxnConflict,      // instant; arg = txn id that lost the race
};

/// Operator spans emitted by the executor and the fan-out workers
/// (the arg word of kSpanBegin/kSpanEnd).
enum class TraceSpanId : uint64_t {
  kPlan = 0,
  kExecute,
  kAggregate,
  kSort,
  kStream,
  kWorker,
};

/// Checkpoint phases in execution order (the arg word of
/// kCheckpointPhaseBegin/End).
enum class TraceCheckpointPhase : uint64_t {
  kFlushPages = 0,
  kSaveCatalog,
  kJournalCommit,
  kJournalApply,
  kSaveMeta,
  kWalTruncate,
};

/// Tier-migration phases (the arg word of kTierPhaseBegin/End).
enum class TraceTierPhase : uint64_t {
  kCheckpoint = 0,
  kCollect,
  kMigrate,
  kRelease,
};

/// The category bit an event type belongs to.
uint32_t TraceEventCategory(TraceEventType t);

/// Chrome trace_event phase of an event type: 'B' (span open),
/// 'E' (span close) or 'i' (instant).
char TraceEventPhase(TraceEventType t);

/// Display name of an event. Span-shaped types whose arg selects the
/// actual operator (kSpanBegin, kCheckpointPhaseBegin, ...) resolve the
/// name from `arg`, so a B and its E render identically.
const char* TraceEventName(TraceEventType t, uint64_t arg);

/// Index of a category bit into the per-category counter arrays
/// (0..kTraceCategoryCount-1; 0 if `cat_bit` is not a known bit).
int TraceCategoryIndex(uint32_t cat_bit);

}  // namespace tcob

#endif  // TCOB_COMMON_TRACE_EVENTS_H_
