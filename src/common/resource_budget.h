#ifndef TCOB_COMMON_RESOURCE_BUDGET_H_
#define TCOB_COMMON_RESOURCE_BUDGET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/trace_ring.h"

namespace tcob {

/// Lock-free global byte accounting with an optional hard cap.
///
/// Memory consumers that can grow with the data — version-cache pins,
/// cursor queue batches, cold-segment decode buffers — charge their
/// bytes here and release them when done. TryCharge never blocks: past
/// the cap it refuses (and counts the rejection) and the caller sheds
/// load instead — the materializer drops its pinned cache between roots,
/// the cursor keeps streaming with what it has. A refused charge is
/// never fatal, so a lone over-cap query still completes; what the cap
/// guarantees is that the *charged* total never exceeds it.
///
/// A cap of 0 means unlimited: every charge succeeds but the accounting
/// (current + peak) still runs, which is how the benchmarks measure the
/// unbounded peak a cap should be set against.
class ResourceBudget {
 public:
  explicit ResourceBudget(uint64_t cap_bytes = 0) : cap_(cap_bytes) {}

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Attempts to charge `bytes`; false (and a rejection tick) past the
  /// cap. Never blocks.
  bool TryCharge(uint64_t bytes) {
    uint64_t cur = charged_.load(std::memory_order_relaxed);
    for (;;) {
      if (cap_ != 0 && cur + bytes > cap_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        TraceEmit(trace_, TraceEventType::kBudgetRefusal, bytes);
        return false;
      }
      if (charged_.compare_exchange_weak(cur, cur + bytes,
                                         std::memory_order_relaxed)) {
        break;
      }
    }
    uint64_t now = cur + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  void Release(uint64_t bytes) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t cap() const { return cap_; }
  uint64_t charged() const {
    return charged_.load(std::memory_order_relaxed);
  }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

 private:
  const uint64_t cap_;
  std::atomic<uint64_t> charged_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> rejected_{0};
  TraceRecorder* trace_ = nullptr;
};

/// Per-query view of a ResourceBudget: tracks what this one query has
/// charged (and its peak), releases everything it still holds on
/// destruction, and remembers — as `overflow` — the bytes the global
/// budget refused, so callers can both report accurate per-query memory
/// and detect budget pressure (TakePressure) to shed their caches.
///
/// Thread-safe: one query's charges arrive from the producer thread and
/// every fan-out worker concurrently. A null budget means "account
/// locally, never refuse".
class BudgetLease {
 public:
  explicit BudgetLease(ResourceBudget* budget = nullptr) : budget_(budget) {}

  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  ~BudgetLease() {
    uint64_t held = charged_.load(std::memory_order_relaxed);
    if (budget_ != nullptr && held > 0) budget_->Release(held);
  }

  /// Charges `bytes` against the global budget. On refusal the bytes are
  /// recorded as overflow (the caller proceeds uncharged) and the
  /// pressure flag is raised.
  bool Charge(uint64_t bytes) {
    if (budget_ != nullptr && !budget_->TryCharge(bytes)) {
      overflow_.fetch_add(bytes, std::memory_order_relaxed);
      pressure_.store(true, std::memory_order_release);
      TraceEmit(budget_->trace(), TraceEventType::kBudgetPressure, bytes);
      return false;
    }
    uint64_t now =
        charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Releases `charged_bytes` back to the budget and forgets
  /// `overflow_bytes` of refused weight (callers that tracked both).
  void Release(uint64_t charged_bytes, uint64_t overflow_bytes = 0) {
    if (charged_bytes > 0) {
      charged_.fetch_sub(charged_bytes, std::memory_order_relaxed);
      if (budget_ != nullptr) budget_->Release(charged_bytes);
    }
    if (overflow_bytes > 0) {
      overflow_.fetch_sub(overflow_bytes, std::memory_order_relaxed);
    }
  }

  /// True once any charge was refused since the last call; clears the
  /// flag. Cache owners poll this between roots and trim when set.
  bool TakePressure() {
    return pressure_.exchange(false, std::memory_order_acq_rel);
  }

  uint64_t charged() const {
    return charged_.load(std::memory_order_relaxed);
  }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  ResourceBudget* budget() const { return budget_; }

 private:
  ResourceBudget* budget_;
  std::atomic<uint64_t> charged_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> overflow_{0};
  std::atomic<bool> pressure_{false};
};

/// Database-level admission gate: at most `max_inflight` queries hold a
/// slot at once; later arrivals wait (bounded by a timeout and by the
/// query's own deadline/cancel token) and are refused with a clean
/// DeadlineExceeded when the wait runs out. 0 = gate disabled.
class AdmissionController {
 public:
  explicit AdmissionController(size_t max_inflight = 0)
      : max_inflight_(max_inflight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a slot frees, the timeout elapses, or `ctx` (may be
  /// null) cancels/expires. On OK the caller owns a slot and must
  /// Release() exactly once.
  Status Acquire(const QueryContext* ctx, uint64_t timeout_micros);

  void Release();

  size_t max_inflight() const { return max_inflight_; }
  size_t inflight() const;
  /// Queries currently blocked waiting for a slot.
  size_t queue_depth() const;
  /// High-water mark of the wait queue since construction.
  size_t peak_queue_depth() const;
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  const size_t max_inflight_;
  TraceRecorder* trace_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
  size_t peak_waiting_ = 0;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace tcob

#endif  // TCOB_COMMON_RESOURCE_BUDGET_H_
