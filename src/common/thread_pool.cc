#include "common/thread_pool.h"

namespace tcob {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    auto [task, batch] = std::move(queue_.front());
    queue_.pop();
    lock.unlock();
    task();
    lock.lock();
    if (--batch->remaining == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  BatchHandle handle = Submit(std::move(tasks));
  Wait(handle);
}

ThreadPool::BatchHandle ThreadPool::Submit(
    std::vector<std::function<void()>> tasks) {
  BatchHandle handle;
  if (tasks.empty()) return handle;
  handle.batch_ = std::make_unique<Batch>();
  handle.batch_->remaining = tasks.size();
  std::lock_guard<std::mutex> lock(mu_);
  for (std::function<void()>& task : tasks) {
    queue_.emplace(std::move(task), handle.batch_.get());
  }
  work_cv_.notify_all();
  return handle;
}

void ThreadPool::Wait(BatchHandle& handle) {
  if (handle.batch_ == nullptr) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&handle] { return handle.batch_->remaining == 0; });
  }
  handle.batch_.reset();
}

}  // namespace tcob
