#include "common/coding.h"

#include <cstring>

namespace tcob {

namespace {

Status Underflow(const char* what) {
  return Status::Corruption(std::string("decode underflow: ") + what);
}

}  // namespace

void EncodeFixed16(char* buf, uint16_t v) {
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
}

void EncodeFixed32(char* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void EncodeFixed64(char* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

uint16_t DecodeFixed16(const char* buf) {
  const uint8_t* b = reinterpret_cast<const uint8_t*>(buf);
  return static_cast<uint16_t>(b[0]) | (static_cast<uint16_t>(b[1]) << 8);
}

uint32_t DecodeFixed32(const char* buf) {
  const uint8_t* b = reinterpret_cast<const uint8_t*>(buf);
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

uint64_t DecodeFixed64(const char* buf) {
  const uint8_t* b = reinterpret_cast<const uint8_t*>(buf);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

Status GetFixed16(Slice* input, uint16_t* v) {
  if (input->size() < 2) return Underflow("fixed16");
  *v = DecodeFixed16(input->data());
  input->RemovePrefix(2);
  return Status::OK();
}

Status GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return Underflow("fixed32");
  *v = DecodeFixed32(input->data());
  input->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return Underflow("fixed64");
  *v = DecodeFixed64(input->data());
  input->RemovePrefix(8);
  return Status::OK();
}

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarsint64(std::string* dst, int64_t v) {
  // Zigzag: small magnitudes (of either sign) stay small.
  uint64_t enc = (static_cast<uint64_t>(v) << 1) ^
                 static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, enc);
}

Status GetVarint64(Slice* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Underflow("varint64");
}

Status GetVarint32(Slice* input, uint32_t* v) {
  uint64_t v64;
  TCOB_RETURN_NOT_OK(GetVarint64(input, &v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status GetVarsint64(Slice* input, int64_t* v) {
  uint64_t enc;
  TCOB_RETURN_NOT_OK(GetVarint64(input, &enc));
  *v = static_cast<int64_t>((enc >> 1) ^ (~(enc & 1) + 1));
  return Status::OK();
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  TCOB_RETURN_NOT_OK(GetVarint64(input, &len));
  if (input->size() < len) return Underflow("length-prefixed bytes");
  *value = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return Status::OK();
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

Status GetDouble(Slice* input, double* v) {
  uint64_t bits;
  TCOB_RETURN_NOT_OK(GetFixed64(input, &bits));
  memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

void PutComparableU64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * (7 - i))) & 0xff);
  }
  dst->append(buf, 8);
}

uint64_t DecodeComparableU64(const char* buf) {
  const uint8_t* b = reinterpret_cast<const uint8_t*>(buf);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

void PutComparableI64(std::string* dst, int64_t v) {
  PutComparableU64(dst, static_cast<uint64_t>(v) ^ (1ull << 63));
}

int64_t DecodeComparableI64(const char* buf) {
  return static_cast<int64_t>(DecodeComparableU64(buf) ^ (1ull << 63));
}

void PutComparableDouble(std::string* dst, double v) {
  uint64_t bits;
  memcpy(&bits, &v, sizeof(bits));
  // Positive doubles: flip sign bit. Negative doubles: flip all bits.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  PutComparableU64(dst, bits);
}

double DecodeComparableDouble(const char* buf) {
  uint64_t bits = DecodeComparableU64(buf);
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double v;
  memcpy(&v, &bits, sizeof(v));
  return v;
}

int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace tcob
