#include "catalog/catalog.h"

#include <set>

#include "common/coding.h"
#include "storage/io_env.h"

namespace tcob {

Result<TypeId> Catalog::CreateAtomType(const std::string& name,
                                       std::vector<AttributeDef> attributes) {
  if (name.empty()) return Status::InvalidArgument("atom type name empty");
  if (attributes.empty()) {
    return Status::InvalidArgument("atom type needs at least one attribute");
  }
  if (GetAtomTypeByName(name).ok()) {
    return Status::AlreadyExists("atom type exists: " + name);
  }
  std::set<std::string> seen;
  for (const AttributeDef& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name empty in " + name);
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute " + a.name +
                                     " in " + name);
    }
  }
  AtomTypeDef def;
  def.id = next_type_id_++;
  def.name = name;
  def.attributes = std::move(attributes);
  TypeId id = def.id;
  atom_types_[id] = std::move(def);
  return id;
}

Result<LinkTypeId> Catalog::CreateLinkType(const std::string& name,
                                           TypeId from_type, TypeId to_type) {
  if (name.empty()) return Status::InvalidArgument("link type name empty");
  if (GetLinkTypeByName(name).ok()) {
    return Status::AlreadyExists("link type exists: " + name);
  }
  TCOB_RETURN_NOT_OK(GetAtomType(from_type).status());
  TCOB_RETURN_NOT_OK(GetAtomType(to_type).status());
  LinkTypeDef def;
  def.id = next_type_id_++;
  def.name = name;
  def.from_type = from_type;
  def.to_type = to_type;
  LinkTypeId id = def.id;
  link_types_[id] = std::move(def);
  return id;
}

Result<MoleculeTypeId> Catalog::CreateMoleculeType(
    const std::string& name, TypeId root_type,
    std::vector<MoleculeEdge> edges) {
  if (name.empty()) return Status::InvalidArgument("molecule type name empty");
  if (GetMoleculeTypeByName(name).ok()) {
    return Status::AlreadyExists("molecule type exists: " + name);
  }
  TCOB_RETURN_NOT_OK(GetAtomType(root_type).status());
  // Connectedness: every edge must leave a type already reached.
  std::set<TypeId> reached = {root_type};
  for (const MoleculeEdge& e : edges) {
    TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link, GetLinkType(e.link));
    TypeId source = e.forward ? link->from_type : link->to_type;
    TypeId target = e.forward ? link->to_type : link->from_type;
    if (reached.count(source) == 0) {
      return Status::InvalidArgument(
          "molecule type " + name + " is disconnected: edge over link '" +
          link->name + "' leaves unreached type");
    }
    reached.insert(target);
  }
  MoleculeTypeDef def;
  def.id = next_type_id_++;
  def.name = name;
  def.root_type = root_type;
  def.edges = std::move(edges);
  MoleculeTypeId id = def.id;
  molecule_types_[id] = std::move(def);
  return id;
}

Result<IndexId> Catalog::CreateAttrIndex(const std::string& name,
                                         TypeId atom_type,
                                         const std::string& attr_name) {
  if (name.empty()) return Status::InvalidArgument("index name empty");
  if (GetAttrIndexByName(name).ok()) {
    return Status::AlreadyExists("index exists: " + name);
  }
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type, GetAtomType(atom_type));
  int pos = type->AttrIndex(attr_name);
  if (pos < 0) {
    return Status::InvalidArgument("no attribute " + attr_name + " in " +
                                   type->name);
  }
  // One index per attribute is enough (duplicates would be redundant).
  for (const auto& [id, def] : attr_indexes_) {
    if (def.atom_type == atom_type &&
        def.attr_pos == static_cast<uint32_t>(pos)) {
      return Status::AlreadyExists("attribute " + type->name + "." +
                                   attr_name + " is already indexed by " +
                                   def.name);
    }
  }
  AttrIndexDef def;
  def.id = next_type_id_++;
  def.name = name;
  def.atom_type = atom_type;
  def.attr_pos = static_cast<uint32_t>(pos);
  IndexId id = def.id;
  attr_indexes_[id] = std::move(def);
  return id;
}

Result<const AttrIndexDef*> Catalog::GetAttrIndex(IndexId id) const {
  auto it = attr_indexes_.find(id);
  if (it == attr_indexes_.end()) {
    return Status::NotFound("index id " + std::to_string(id));
  }
  return &it->second;
}

Result<const AttrIndexDef*> Catalog::GetAttrIndexByName(
    const std::string& name) const {
  for (const auto& [id, def] : attr_indexes_) {
    if (def.name == name) return &def;
  }
  return Status::NotFound("index " + name);
}

std::vector<const AttrIndexDef*> Catalog::AttrIndexesOf(TypeId type) const {
  std::vector<const AttrIndexDef*> out;
  for (const auto& [id, def] : attr_indexes_) {
    if (def.atom_type == type) out.push_back(&def);
  }
  return out;
}

std::vector<const AttrIndexDef*> Catalog::AttrIndexes() const {
  std::vector<const AttrIndexDef*> out;
  for (const auto& [id, def] : attr_indexes_) out.push_back(&def);
  return out;
}

Result<const AtomTypeDef*> Catalog::GetAtomType(TypeId id) const {
  auto it = atom_types_.find(id);
  if (it == atom_types_.end()) {
    return Status::NotFound("atom type id " + std::to_string(id));
  }
  return &it->second;
}

Result<const AtomTypeDef*> Catalog::GetAtomTypeByName(
    const std::string& name) const {
  for (const auto& [id, def] : atom_types_) {
    if (def.name == name) return &def;
  }
  return Status::NotFound("atom type " + name);
}

Result<const LinkTypeDef*> Catalog::GetLinkType(LinkTypeId id) const {
  auto it = link_types_.find(id);
  if (it == link_types_.end()) {
    return Status::NotFound("link type id " + std::to_string(id));
  }
  return &it->second;
}

Result<const LinkTypeDef*> Catalog::GetLinkTypeByName(
    const std::string& name) const {
  for (const auto& [id, def] : link_types_) {
    if (def.name == name) return &def;
  }
  return Status::NotFound("link type " + name);
}

Result<const MoleculeTypeDef*> Catalog::GetMoleculeType(
    MoleculeTypeId id) const {
  auto it = molecule_types_.find(id);
  if (it == molecule_types_.end()) {
    return Status::NotFound("molecule type id " + std::to_string(id));
  }
  return &it->second;
}

Result<const MoleculeTypeDef*> Catalog::GetMoleculeTypeByName(
    const std::string& name) const {
  for (const auto& [id, def] : molecule_types_) {
    if (def.name == name) return &def;
  }
  return Status::NotFound("molecule type " + name);
}

std::vector<const AtomTypeDef*> Catalog::AtomTypes() const {
  std::vector<const AtomTypeDef*> out;
  for (const auto& [id, def] : atom_types_) out.push_back(&def);
  return out;
}

std::vector<const LinkTypeDef*> Catalog::LinkTypes() const {
  std::vector<const LinkTypeDef*> out;
  for (const auto& [id, def] : link_types_) out.push_back(&def);
  return out;
}

std::vector<const MoleculeTypeDef*> Catalog::MoleculeTypes() const {
  std::vector<const MoleculeTypeDef*> out;
  for (const auto& [id, def] : molecule_types_) out.push_back(&def);
  return out;
}

std::vector<const LinkTypeDef*> Catalog::LinksOf(TypeId type) const {
  std::vector<const LinkTypeDef*> out;
  for (const auto& [id, def] : link_types_) {
    if (def.from_type == type || def.to_type == type) out.push_back(&def);
  }
  return out;
}

namespace {
constexpr uint32_t kCatalogMagic = 0x54434254;  // "TCBT"
constexpr uint32_t kCatalogVersion = 2;  // v2 added attribute indexes
}  // namespace

std::string Catalog::Serialize() const {
  std::string out;
  PutFixed32(&out, kCatalogMagic);
  PutFixed32(&out, kCatalogVersion);
  PutVarint32(&out, next_type_id_);
  PutVarint64(&out, next_atom_id_);
  PutVarint32(&out, static_cast<uint32_t>(atom_types_.size()));
  for (const auto& [id, def] : atom_types_) {
    PutVarint32(&out, def.id);
    PutLengthPrefixed(&out, def.name);
    PutVarint32(&out, static_cast<uint32_t>(def.attributes.size()));
    for (const AttributeDef& a : def.attributes) {
      PutLengthPrefixed(&out, a.name);
      out.push_back(static_cast<char>(a.type));
    }
  }
  PutVarint32(&out, static_cast<uint32_t>(link_types_.size()));
  for (const auto& [id, def] : link_types_) {
    PutVarint32(&out, def.id);
    PutLengthPrefixed(&out, def.name);
    PutVarint32(&out, def.from_type);
    PutVarint32(&out, def.to_type);
  }
  PutVarint32(&out, static_cast<uint32_t>(molecule_types_.size()));
  for (const auto& [id, def] : molecule_types_) {
    PutVarint32(&out, def.id);
    PutLengthPrefixed(&out, def.name);
    PutVarint32(&out, def.root_type);
    PutVarint32(&out, static_cast<uint32_t>(def.edges.size()));
    for (const MoleculeEdge& e : def.edges) {
      PutVarint32(&out, e.link);
      out.push_back(e.forward ? 1 : 0);
    }
  }
  PutVarint32(&out, static_cast<uint32_t>(attr_indexes_.size()));
  for (const auto& [id, def] : attr_indexes_) {
    PutVarint32(&out, def.id);
    PutLengthPrefixed(&out, def.name);
    PutVarint32(&out, def.atom_type);
    PutVarint32(&out, def.attr_pos);
  }
  return out;
}

Result<Catalog> Catalog::Deserialize(Slice input) {
  Catalog cat;
  uint32_t magic, version;
  TCOB_RETURN_NOT_OK(GetFixed32(&input, &magic));
  if (magic != kCatalogMagic) return Status::Corruption("catalog magic");
  TCOB_RETURN_NOT_OK(GetFixed32(&input, &version));
  if (version < 1 || version > kCatalogVersion) {
    return Status::Corruption("catalog version " + std::to_string(version));
  }
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &cat.next_type_id_));
  uint64_t next_atom;
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &next_atom));
  cat.next_atom_id_ = next_atom;

  uint32_t n_atom;
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &n_atom));
  for (uint32_t i = 0; i < n_atom; ++i) {
    AtomTypeDef def;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.id));
    Slice name;
    TCOB_RETURN_NOT_OK(GetLengthPrefixed(&input, &name));
    def.name = name.ToString();
    uint32_t n_attrs;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &n_attrs));
    for (uint32_t a = 0; a < n_attrs; ++a) {
      AttributeDef attr;
      Slice attr_name;
      TCOB_RETURN_NOT_OK(GetLengthPrefixed(&input, &attr_name));
      attr.name = attr_name.ToString();
      if (input.empty()) return Status::Corruption("catalog truncated");
      attr.type = static_cast<AttrType>(input[0]);
      input.RemovePrefix(1);
      def.attributes.push_back(std::move(attr));
    }
    cat.atom_types_[def.id] = std::move(def);
  }

  uint32_t n_link;
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &n_link));
  for (uint32_t i = 0; i < n_link; ++i) {
    LinkTypeDef def;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.id));
    Slice name;
    TCOB_RETURN_NOT_OK(GetLengthPrefixed(&input, &name));
    def.name = name.ToString();
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.from_type));
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.to_type));
    cat.link_types_[def.id] = std::move(def);
  }

  uint32_t n_mol;
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &n_mol));
  for (uint32_t i = 0; i < n_mol; ++i) {
    MoleculeTypeDef def;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.id));
    Slice name;
    TCOB_RETURN_NOT_OK(GetLengthPrefixed(&input, &name));
    def.name = name.ToString();
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.root_type));
    uint32_t n_edges;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &n_edges));
    for (uint32_t e = 0; e < n_edges; ++e) {
      MoleculeEdge edge;
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &edge.link));
      if (input.empty()) return Status::Corruption("catalog truncated");
      edge.forward = input[0] != 0;
      input.RemovePrefix(1);
      def.edges.push_back(edge);
    }
    cat.molecule_types_[def.id] = std::move(def);
  }

  if (version >= 2) {
    uint32_t n_idx;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &n_idx));
    for (uint32_t i = 0; i < n_idx; ++i) {
      AttrIndexDef def;
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.id));
      Slice name;
      TCOB_RETURN_NOT_OK(GetLengthPrefixed(&input, &name));
      def.name = name.ToString();
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.atom_type));
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &def.attr_pos));
      cat.attr_indexes_[def.id] = std::move(def);
    }
  }
  return cat;
}

Status Catalog::SaveToFile(IoEnv* env, const std::string& path) const {
  return WriteFileAtomic(env, path, Serialize());
}

Status Catalog::SaveToFile(const std::string& path) const {
  return SaveToFile(IoEnv::Default(), path);
}

Result<Catalog> Catalog::LoadFromFile(IoEnv* env, const std::string& path) {
  Result<std::string> bytes = ReadFileToString(env, path);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) {
      return Status::NotFound("catalog file " + path);
    }
    return bytes.status();
  }
  return Deserialize(Slice(bytes.value()));
}

Result<Catalog> Catalog::LoadFromFile(const std::string& path) {
  return LoadFromFile(IoEnv::Default(), path);
}

}  // namespace tcob
