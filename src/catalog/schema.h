#ifndef TCOB_CATALOG_SCHEMA_H_
#define TCOB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "record/value.h"

namespace tcob {

using TypeId = uint32_t;
using LinkTypeId = uint32_t;
using MoleculeTypeId = uint32_t;
inline constexpr uint32_t kInvalidTypeId = 0;

/// One attribute of an atom type.
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kString;
};

/// An atom type: the record schema of the model's elementary objects.
///
/// Atoms are the nodes of the database network. Every atom carries a
/// system-assigned surrogate (AtomId); the listed attributes are the
/// user-visible, *time-varying* state.
struct AtomTypeDef {
  TypeId id = kInvalidTypeId;
  std::string name;
  std::vector<AttributeDef> attributes;

  /// Index of attribute `attr_name`, or -1.
  int AttrIndex(const std::string& attr_name) const {
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].name == attr_name) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<AttrType> AttrTypes() const {
    std::vector<AttrType> out;
    out.reserve(attributes.size());
    for (const AttributeDef& a : attributes) out.push_back(a.type);
    return out;
  }
};

/// A bidirectional link type between two atom types.
///
/// Links are first-class and symmetric in the model: a link type declared
/// from Dept to Emp can be traversed in either direction. Individual
/// connections are themselves versioned over valid time (an employee is
/// linked to a department *during* an interval).
struct LinkTypeDef {
  LinkTypeId id = kInvalidTypeId;
  std::string name;
  TypeId from_type = kInvalidTypeId;
  TypeId to_type = kInvalidTypeId;
};

/// One traversal step of a molecule type definition.
///
/// `forward` traverses the link from its from_type side to its to_type
/// side; false traverses against the declaration.
struct MoleculeEdge {
  LinkTypeId link = kInvalidTypeId;
  bool forward = true;
};

/// A molecule type: a rooted, connected subgraph of the type network.
///
/// Molecules are the model's dynamically defined complex objects. A
/// molecule type names a root atom type and an ordered list of edges;
/// each edge must attach to a type already reachable from the root, so
/// the definition is connected by construction. Materializing a molecule
/// means: take a root atom, traverse the edges breadth-first collecting
/// the connected atoms (at one instant, or across time).
struct MoleculeTypeDef {
  MoleculeTypeId id = kInvalidTypeId;
  std::string name;
  TypeId root_type = kInvalidTypeId;
  std::vector<MoleculeEdge> edges;
};

using IndexId = uint32_t;

/// A secondary index over one attribute of an atom type.
///
/// Entries are *version-grained*: every atom version contributes one
/// entry keyed (value, atom, begin) carrying the version's end, so the
/// index answers value-range lookups AS OF any instant, not only now.
/// NULL attribute values are not indexed.
struct AttrIndexDef {
  IndexId id = kInvalidTypeId;
  std::string name;
  TypeId atom_type = kInvalidTypeId;
  uint32_t attr_pos = 0;  // position in the atom type's attribute list
};

}  // namespace tcob

#endif  // TCOB_CATALOG_SCHEMA_H_
