#ifndef TCOB_CATALOG_CATALOG_H_
#define TCOB_CATALOG_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/slice.h"

namespace tcob {

class IoEnv;

/// The schema registry of a database: atom types, link types, molecule
/// types, plus the atom-surrogate sequence.
///
/// Names are unique per kind. The catalog is an in-memory structure with
/// explicit binary (de)serialization; the Database persists it atomically
/// on every DDL and at checkpoints.
class Catalog {
 public:
  Catalog() = default;

  // The atom-surrogate sequence is atomic (concurrent transactions
  // allocate ids lock-free), which forfeits the implicit moves; these
  // run single-threaded (open/recovery), so plain load/store suffices.
  Catalog(Catalog&& other) noexcept { *this = std::move(other); }
  Catalog& operator=(Catalog&& other) noexcept {
    atom_types_ = std::move(other.atom_types_);
    link_types_ = std::move(other.link_types_);
    molecule_types_ = std::move(other.molecule_types_);
    attr_indexes_ = std::move(other.attr_indexes_);
    next_type_id_ = other.next_type_id_;
    next_atom_id_.store(other.next_atom_id_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  // ---- DDL ----

  /// Registers a new atom type; name must be fresh, attributes non-empty
  /// with unique names.
  Result<TypeId> CreateAtomType(const std::string& name,
                                std::vector<AttributeDef> attributes);

  /// Registers a link type between two existing atom types.
  Result<LinkTypeId> CreateLinkType(const std::string& name, TypeId from_type,
                                    TypeId to_type);

  /// Registers a molecule type; validates that every edge attaches to a
  /// type already reachable from the root (connectedness).
  Result<MoleculeTypeId> CreateMoleculeType(const std::string& name,
                                            TypeId root_type,
                                            std::vector<MoleculeEdge> edges);

  /// Registers a secondary index over `atom_type`'s attribute
  /// `attr_name`.
  Result<IndexId> CreateAttrIndex(const std::string& name, TypeId atom_type,
                                  const std::string& attr_name);

  // ---- lookups ----

  Result<const AtomTypeDef*> GetAtomType(TypeId id) const;
  Result<const AtomTypeDef*> GetAtomTypeByName(const std::string& name) const;
  Result<const LinkTypeDef*> GetLinkType(LinkTypeId id) const;
  Result<const LinkTypeDef*> GetLinkTypeByName(const std::string& name) const;
  Result<const MoleculeTypeDef*> GetMoleculeType(MoleculeTypeId id) const;
  Result<const MoleculeTypeDef*> GetMoleculeTypeByName(
      const std::string& name) const;

  std::vector<const AtomTypeDef*> AtomTypes() const;
  std::vector<const LinkTypeDef*> LinkTypes() const;
  std::vector<const MoleculeTypeDef*> MoleculeTypes() const;

  /// All link types incident to atom type `type` (either side).
  std::vector<const LinkTypeDef*> LinksOf(TypeId type) const;

  Result<const AttrIndexDef*> GetAttrIndex(IndexId id) const;
  Result<const AttrIndexDef*> GetAttrIndexByName(const std::string& name) const;
  /// All secondary indexes over atom type `type`.
  std::vector<const AttrIndexDef*> AttrIndexesOf(TypeId type) const;
  std::vector<const AttrIndexDef*> AttrIndexes() const;

  /// Next fresh atom surrogate (persisted with the catalog). Atomic so
  /// concurrent transactions can buffer inserts without a collision.
  AtomId NextAtomId() {
    return next_atom_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Highest surrogate handed out so far (for recovery bookkeeping).
  AtomId CurrentAtomIdWatermark() const {
    return next_atom_id_.load(std::memory_order_relaxed);
  }
  /// Raises the sequence so future ids do not collide (used by recovery).
  void AdvanceAtomIdWatermark(AtomId at_least) {
    AtomId cur = next_atom_id_.load(std::memory_order_relaxed);
    while (at_least > cur &&
           !next_atom_id_.compare_exchange_weak(cur, at_least,
                                                std::memory_order_relaxed)) {
    }
  }

  // ---- persistence ----

  /// Serializes the full catalog to bytes.
  std::string Serialize() const;
  /// Rebuilds a catalog from Serialize() output.
  static Result<Catalog> Deserialize(Slice input);

  /// Crash-atomic, durable save to `path` through `env` (write temp +
  /// fsync + rename + directory fsync).
  Status SaveToFile(IoEnv* env, const std::string& path) const;
  /// Convenience overload using the default POSIX environment.
  Status SaveToFile(const std::string& path) const;
  /// Loads from `path`; NotFound if the file does not exist.
  static Result<Catalog> LoadFromFile(IoEnv* env, const std::string& path);
  static Result<Catalog> LoadFromFile(const std::string& path);

 private:
  std::map<TypeId, AtomTypeDef> atom_types_;
  std::map<LinkTypeId, LinkTypeDef> link_types_;
  std::map<MoleculeTypeId, MoleculeTypeDef> molecule_types_;
  std::map<IndexId, AttrIndexDef> attr_indexes_;
  uint32_t next_type_id_ = 1;
  std::atomic<AtomId> next_atom_id_{1};
};

}  // namespace tcob

#endif  // TCOB_CATALOG_CATALOG_H_
