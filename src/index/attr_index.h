#ifndef TCOB_INDEX_ATTR_INDEX_H_
#define TCOB_INDEX_ATTR_INDEX_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "index/btree.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// A half-bounded or bounded range over attribute values.
struct ValueRange {
  std::optional<Value> lower;
  bool lower_inclusive = true;
  std::optional<Value> upper;
  bool upper_inclusive = false;

  std::string ToString() const;
};

/// Maintains and queries the secondary attribute indexes.
///
/// One B+-tree per index; entry key = comparable(value) . atom-id .
/// begin-timestamp, payload = the version's end. Every atom version
/// contributes one entry (closed versions keep theirs), so lookups can
/// be AS OF any instant. Maintenance is driven by the Database's
/// logical-operation stream and is idempotent under WAL replay (entries
/// are keyed deterministically and Put overwrites).
class AttrIndexManager {
 public:
  AttrIndexManager(BufferPool* pool, const Catalog* catalog)
      : pool_(pool), catalog_(catalog) {}

  /// Index maintenance hooks, called *before* the store applies the
  /// operation (`old_version` is the live version being closed, if any).

  Status OnInsert(const AtomTypeDef& type, AtomId id,
                  const std::vector<Value>& attrs, Timestamp from);
  Status OnUpdate(const AtomTypeDef& type, AtomId id,
                  const AtomVersion& old_version,
                  const std::vector<Value>& attrs, Timestamp from);
  Status OnDelete(const AtomTypeDef& type, AtomId id,
                  const AtomVersion& old_version, Timestamp from);

  /// Backfills a freshly created index from the store's existing
  /// versions.
  Status Backfill(const AttrIndexDef& def, const AtomTypeDef& type,
                  const TemporalAtomStore& store);

  /// Atom ids having an indexed value in `range` valid at `t`, sorted
  /// and de-duplicated.
  Result<std::vector<AtomId>> LookupAsOf(const AttrIndexDef& def,
                                         const ValueRange& range,
                                         Timestamp t) const;

  /// True if `type` has at least one index (fast pre-check for the
  /// maintenance path).
  bool HasIndexes(TypeId type) const {
    return !catalog_->AttrIndexesOf(type).empty();
  }

  /// Total pages across all index trees (space accounting).
  Result<uint64_t> TotalPages() const;

  /// Temporal vacuuming: removes every index entry whose version ends at
  /// or before `cutoff`, across all indexes. Returns entries removed.
  Result<uint64_t> VacuumBefore(Timestamp cutoff);

  /// B+-tree structural check of every attribute index in the catalog.
  Status VerifyStructure() const;

 private:
  Result<BTree*> TreeOf(IndexId id) const;

  /// Order-preserving encoding of an attribute value (no type tag; all
  /// values in one index share the attribute's type).
  static Status EncodeComparableValue(const Value& v, std::string* dst);

  /// Full entry key: value . atom id . begin.
  static Status EncodeEntryKey(const Value& v, AtomId id, Timestamp begin,
                               std::string* dst);

  Status PutEntry(const AttrIndexDef& def, const Value& v, AtomId id,
                  const Interval& valid);

  BufferPool* pool_;
  const Catalog* catalog_;
  // Guards lazy tree opening; the trees themselves carry their own latch.
  mutable std::mutex trees_mu_;
  mutable std::map<IndexId, std::unique_ptr<BTree>> trees_;
};

}  // namespace tcob

#endif  // TCOB_INDEX_ATTR_INDEX_H_
