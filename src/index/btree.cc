#include "index/btree.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "storage/slotted_page.h"

namespace tcob {

namespace {

constexpr uint32_t kNodeHeader = 12;
constexpr uint32_t kNodeCapacity = kPageDataSize - kNodeHeader;
constexpr uint32_t kBTreeMagic = 0x54424954;  // "TBIT"

// Meta page field offsets.
constexpr uint32_t kMetaMagicOff = 8;
constexpr uint32_t kMetaRootOff = 12;
constexpr uint32_t kMetaCountOff = 16;

}  // namespace

Result<std::unique_ptr<BTree>> BTree::Open(BufferPool* pool,
                                           const std::string& name) {
  TCOB_ASSIGN_OR_RETURN(FileId file, pool->disk()->OpenFile(name));
  std::unique_ptr<BTree> tree(new BTree(pool, file));
  TCOB_RETURN_NOT_OK(tree->LoadOrFormat(name));
  return tree;
}

Status BTree::LoadOrFormat(const std::string& name) {
  TCOB_ASSIGN_OR_RETURN(PageNo pages, pool_->disk()->NumPages(file_));
  if (pages == 0) {
    TCOB_ASSIGN_OR_RETURN(Page * meta, pool_->NewPage(file_));
    PageGuard meta_guard(pool_, meta);
    memset(meta->data, 0, kPageSize);
    meta->data[0] = static_cast<char>(PageType::kMeta);
    EncodeFixed32(meta->data + kMetaMagicOff, kBTreeMagic);
    meta_guard.MarkDirty();
    // Empty tree: root is a fresh empty leaf.
    TCOB_ASSIGN_OR_RETURN(root_, AllocNode());
    Node leaf;
    TCOB_RETURN_NOT_OK(WriteNode(root_, leaf));
    entry_count_ = 0;
    return SaveMeta();
  }
  TCOB_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(file_, 0));
  PageGuard guard(pool_, meta);
  if (DecodeFixed32(meta->data + kMetaMagicOff) != kBTreeMagic) {
    return Status::Corruption("btree meta magic mismatch in " + name);
  }
  root_ = DecodeFixed32(meta->data + kMetaRootOff);
  entry_count_ = DecodeFixed64(meta->data + kMetaCountOff);
  return Status::OK();
}

Status BTree::SaveMeta() {
  TCOB_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(file_, 0));
  PageGuard guard(pool_, meta);
  EncodeFixed32(meta->data + kMetaRootOff, root_);
  EncodeFixed64(meta->data + kMetaCountOff, entry_count_);
  guard.MarkDirty();
  return Status::OK();
}

Result<PageNo> BTree::AllocNode() {
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->NewPage(file_));
  PageGuard guard(pool_, p);
  p->data[0] = static_cast<char>(PageType::kIndex);
  guard.MarkDirty();
  return p->page_no;
}

Result<BTree::Node> BTree::ReadNode(PageNo page) const {
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, page));
  PageGuard guard(pool_, p);
  if (static_cast<PageType>(static_cast<uint8_t>(p->data[0])) !=
      PageType::kIndex) {
    return Status::Corruption("page " + std::to_string(page) +
                              " is not a btree node");
  }
  Node node;
  node.is_leaf = p->data[1] != 0;
  node.next_leaf = DecodeFixed32(p->data + 4);
  uint32_t payload_len = DecodeFixed32(p->data + 8);
  Slice in(p->data + kNodeHeader, payload_len);
  uint32_t n_keys;
  TCOB_RETURN_NOT_OK(GetVarint32(&in, &n_keys));
  node.keys.reserve(n_keys);
  if (node.is_leaf) {
    node.values.reserve(n_keys);
    for (uint32_t i = 0; i < n_keys; ++i) {
      Slice key;
      uint64_t value;
      TCOB_RETURN_NOT_OK(GetLengthPrefixed(&in, &key));
      TCOB_RETURN_NOT_OK(GetVarint64(&in, &value));
      node.keys.push_back(key.ToString());
      node.values.push_back(value);
    }
  } else {
    node.children.reserve(n_keys + 1);
    for (uint32_t i = 0; i < n_keys + 1; ++i) {
      uint32_t child;
      TCOB_RETURN_NOT_OK(GetFixed32(&in, &child));
      node.children.push_back(child);
    }
    for (uint32_t i = 0; i < n_keys; ++i) {
      Slice key;
      TCOB_RETURN_NOT_OK(GetLengthPrefixed(&in, &key));
      node.keys.push_back(key.ToString());
    }
  }
  return node;
}

Status BTree::WriteNode(PageNo page, const Node& node) {
  std::string payload;
  PutVarint32(&payload, static_cast<uint32_t>(node.keys.size()));
  if (node.is_leaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      PutLengthPrefixed(&payload, node.keys[i]);
      PutVarint64(&payload, node.values[i]);
    }
  } else {
    for (PageNo child : node.children) PutFixed32(&payload, child);
    for (const std::string& key : node.keys) PutLengthPrefixed(&payload, key);
  }
  if (payload.size() > kNodeCapacity) {
    return Status::Internal("btree node overflow: " +
                            std::to_string(payload.size()));
  }
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, page));
  PageGuard guard(pool_, p);
  p->data[0] = static_cast<char>(PageType::kIndex);
  p->data[1] = node.is_leaf ? 1 : 0;
  EncodeFixed16(p->data + 2, 0);
  EncodeFixed32(p->data + 4, node.next_leaf);
  EncodeFixed32(p->data + 8, static_cast<uint32_t>(payload.size()));
  memcpy(p->data + kNodeHeader, payload.data(), payload.size());
  guard.MarkDirty();
  return Status::OK();
}

size_t BTree::NodeSize(const Node& node) {
  size_t size = VarintLength(node.keys.size());
  for (const std::string& key : node.keys) {
    size += VarintLength(key.size()) + key.size();
  }
  if (node.is_leaf) {
    for (uint64_t v : node.values) size += VarintLength(v);
  } else {
    size += 4 * node.children.size();
  }
  return size;
}

int BTree::LowerBound(const Node& node, const Slice& key) {
  int lo = 0, hi = static_cast<int>(node.keys.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Slice(node.keys[mid]).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// Index of the child to descend into for `key` in an internal node:
/// the number of separator keys <= key.
int ChildIndex(const std::vector<std::string>& keys, const Slice& key) {
  int lo = 0, hi = static_cast<int>(keys.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Slice(keys[mid]).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<BTree::SplitResult> BTree::InsertRec(PageNo page, const Slice& key,
                                            uint64_t value, bool* replaced) {
  TCOB_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  if (node.is_leaf) {
    int pos = LowerBound(node, key);
    if (pos < static_cast<int>(node.keys.size()) &&
        Slice(node.keys[pos]) == key) {
      node.values[pos] = value;
      *replaced = true;
    } else {
      node.keys.insert(node.keys.begin() + pos, key.ToString());
      node.values.insert(node.values.begin() + pos, value);
      *replaced = false;
    }
  } else {
    int idx = ChildIndex(node.keys, key);
    TCOB_ASSIGN_OR_RETURN(SplitResult child_split,
                          InsertRec(node.children[idx], key, value, replaced));
    if (!child_split.split) {
      return SplitResult{};
    }
    node.keys.insert(node.keys.begin() + idx, child_split.sep_key);
    node.children.insert(node.children.begin() + idx + 1,
                         child_split.right_page);
  }

  if (NodeSize(node) <= kNodeCapacity) {
    TCOB_RETURN_NOT_OK(WriteNode(page, node));
    return SplitResult{};
  }

  // Split: move the upper half into a fresh right sibling.
  SplitResult result;
  result.split = true;
  Node right;
  right.is_leaf = node.is_leaf;
  if (node.is_leaf) {
    size_t mid = node.keys.size() / 2;
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    right.values.assign(node.values.begin() + mid, node.values.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    result.sep_key = right.keys.front();
    TCOB_ASSIGN_OR_RETURN(result.right_page, AllocNode());
    right.next_leaf = node.next_leaf;
    node.next_leaf = result.right_page;
  } else {
    size_t mid = node.keys.size() / 2;
    result.sep_key = node.keys[mid];
    right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.keys.resize(mid);
    node.children.resize(mid + 1);
    TCOB_ASSIGN_OR_RETURN(result.right_page, AllocNode());
  }
  TCOB_RETURN_NOT_OK(WriteNode(page, node));
  TCOB_RETURN_NOT_OK(WriteNode(result.right_page, right));
  return result;
}

Status BTree::Put(const Slice& key, uint64_t value) {
  if (key.size() > 1024) {
    return Status::InvalidArgument("btree key too long");
  }
  std::unique_lock<std::shared_mutex> lock(latch_);
  bool replaced = false;
  TCOB_ASSIGN_OR_RETURN(SplitResult split,
                        InsertRec(root_, key, value, &replaced));
  if (split.split) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.keys.push_back(split.sep_key);
    new_root.children.push_back(root_);
    new_root.children.push_back(split.right_page);
    TCOB_ASSIGN_OR_RETURN(PageNo new_root_page, AllocNode());
    TCOB_RETURN_NOT_OK(WriteNode(new_root_page, new_root));
    root_ = new_root_page;
  }
  if (!replaced) ++entry_count_;
  return SaveMeta();
}

Result<PageNo> BTree::FindLeaf(const Slice& key) const {
  PageNo page = root_;
  for (;;) {
    TCOB_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.is_leaf) return page;
    page = node.children[ChildIndex(node.keys, key)];
  }
}

Result<uint64_t> BTree::Get(const Slice& key) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  TCOB_ASSIGN_OR_RETURN(PageNo leaf_page, FindLeaf(key));
  TCOB_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_page));
  int pos = LowerBound(leaf, key);
  if (pos < static_cast<int>(leaf.keys.size()) &&
      Slice(leaf.keys[pos]) == key) {
    return leaf.values[pos];
  }
  return Status::NotFound("btree key absent");
}

Status BTree::Delete(const Slice& key) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  TCOB_ASSIGN_OR_RETURN(PageNo leaf_page, FindLeaf(key));
  TCOB_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_page));
  int pos = LowerBound(leaf, key);
  if (pos >= static_cast<int>(leaf.keys.size()) ||
      Slice(leaf.keys[pos]) != key) {
    return Status::NotFound("btree key absent");
  }
  leaf.keys.erase(leaf.keys.begin() + pos);
  leaf.values.erase(leaf.values.begin() + pos);
  TCOB_RETURN_NOT_OK(WriteNode(leaf_page, leaf));
  --entry_count_;
  return SaveMeta();
}

Status BTree::Scan(
    const Slice& lower, const Slice& upper,
    const std::function<Result<bool>(const Slice&, uint64_t)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  return ScanLocked(lower, upper, fn);
}

Status BTree::ScanLocked(
    const Slice& lower, const Slice& upper,
    const std::function<Result<bool>(const Slice&, uint64_t)>& fn) const {
  TCOB_ASSIGN_OR_RETURN(PageNo page, FindLeaf(lower));
  while (page != kInvalidPageNo) {
    TCOB_ASSIGN_OR_RETURN(Node leaf, ReadNode(page));
    int pos = LowerBound(leaf, lower);
    for (int i = pos; i < static_cast<int>(leaf.keys.size()); ++i) {
      Slice key(leaf.keys[i]);
      if (!upper.empty() && key.compare(upper) >= 0) return Status::OK();
      TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(key, leaf.values[i]));
      if (!keep_going) return Status::OK();
    }
    page = leaf.next_leaf;
  }
  return Status::OK();
}

Status BTree::ScanPrefix(
    const Slice& prefix,
    const std::function<Result<bool>(const Slice&, uint64_t)>& fn) const {
  // Upper bound: prefix with the last non-0xFF byte incremented.
  std::string upper = prefix.ToString();
  while (!upper.empty() &&
         static_cast<unsigned char>(upper.back()) == 0xFF) {
    upper.pop_back();
  }
  if (!upper.empty()) {
    upper.back() = static_cast<char>(upper.back() + 1);
  }
  std::shared_lock<std::shared_mutex> lock(latch_);
  return ScanLocked(prefix, Slice(upper), fn);
}

Result<std::pair<std::string, uint64_t>> BTree::Floor(
    const Slice& target) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  PageNo page = root_;
  PageNo fallback_subtree = kInvalidPageNo;
  for (;;) {
    TCOB_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.is_leaf) {
      // Greatest key <= target within this leaf.
      int pos = LowerBound(node, target);
      if (pos < static_cast<int>(node.keys.size()) &&
          Slice(node.keys[pos]) == target) {
        return std::make_pair(node.keys[pos], node.values[pos]);
      }
      if (pos > 0) {
        return std::make_pair(node.keys[pos - 1], node.values[pos - 1]);
      }
      break;  // everything in this leaf > target; use the fallback subtree
    }
    int idx = ChildIndex(node.keys, target);
    if (idx > 0) fallback_subtree = node.children[idx - 1];
    page = node.children[idx];
  }
  if (fallback_subtree == kInvalidPageNo) {
    return Status::NotFound("no entry <= target");
  }
  // Rightmost entry of the fallback subtree.
  page = fallback_subtree;
  for (;;) {
    TCOB_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.is_leaf) {
      if (node.keys.empty()) return Status::NotFound("empty fallback leaf");
      return std::make_pair(node.keys.back(), node.values.back());
    }
    page = node.children.back();
  }
}

Result<uint32_t> BTree::Height() const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  uint32_t height = 1;
  PageNo page = root_;
  for (;;) {
    TCOB_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.is_leaf) return height;
    page = node.children[0];
    ++height;
  }
}

Status BTree::VerifyRec(PageNo page, uint32_t depth, const std::string* lower,
                        const std::string* upper, VerifyState* vs) const {
  if (depth > 64) {
    return Status::Corruption("btree deeper than 64 levels (cycle?)");
  }
  TCOB_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  std::string where = "btree node " + std::to_string(page);
  for (size_t i = 0; i < node.keys.size(); ++i) {
    if (i > 0 && node.keys[i] <= node.keys[i - 1]) {
      return Status::Corruption(where + ": keys out of order at " +
                                std::to_string(i));
    }
    if (lower != nullptr && node.keys[i] < *lower) {
      return Status::Corruption(where + ": key below subtree lower bound");
    }
    if (upper != nullptr && node.keys[i] >= *upper) {
      return Status::Corruption(where + ": key above subtree upper bound");
    }
  }
  if (node.is_leaf) {
    if (!node.children.empty() ||
        node.values.size() != node.keys.size()) {
      return Status::Corruption(where + ": malformed leaf");
    }
    if (vs->leaf_depth == 0) {
      vs->leaf_depth = depth;
    } else if (vs->leaf_depth != depth) {
      return Status::Corruption(where + ": leaf at depth " +
                                std::to_string(depth) + ", expected " +
                                std::to_string(vs->leaf_depth));
    }
    vs->entries += node.keys.size();
    vs->leaves.push_back(page);
    return Status::OK();
  }
  if (node.children.size() != node.keys.size() + 1 || !node.values.empty()) {
    return Status::Corruption(where + ": internal node has " +
                              std::to_string(node.children.size()) +
                              " children for " +
                              std::to_string(node.keys.size()) + " keys");
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    // keys[i] is the lowest key under children[i + 1].
    const std::string* child_lower = i == 0 ? lower : &node.keys[i - 1];
    const std::string* child_upper =
        i < node.keys.size() ? &node.keys[i] : upper;
    TCOB_RETURN_NOT_OK(
        VerifyRec(node.children[i], depth + 1, child_lower, child_upper, vs));
  }
  return Status::OK();
}

Status BTree::VerifyStructure() const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  VerifyState vs;
  TCOB_RETURN_NOT_OK(VerifyRec(root_, 1, nullptr, nullptr, &vs));
  if (vs.entries != entry_count_) {
    return Status::Corruption(
        "btree entry count mismatch: meta says " +
        std::to_string(entry_count_) + ", leaves hold " +
        std::to_string(vs.entries));
  }
  // The leaf chain must link the leaves exactly in key order.
  for (size_t i = 0; i < vs.leaves.size(); ++i) {
    TCOB_ASSIGN_OR_RETURN(Node leaf, ReadNode(vs.leaves[i]));
    PageNo expected_next =
        i + 1 < vs.leaves.size() ? vs.leaves[i + 1] : kInvalidPageNo;
    if (leaf.next_leaf != expected_next) {
      return Status::Corruption("btree leaf chain broken at page " +
                                std::to_string(vs.leaves[i]));
    }
  }
  return Status::OK();
}

}  // namespace tcob
