#ifndef TCOB_INDEX_BTREE_H_
#define TCOB_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace tcob {

/// Disk-resident B+-tree mapping variable-length byte keys (memcmp order)
/// to 64-bit payloads.
///
/// Used for every index in TCOB: atom-id → RID directories, version
/// directories, and secondary attribute indexes (via the order-preserving
/// encodings in common/coding.h).
///
/// Node pages are (de)serialized whole: each page holds one sorted node.
/// Splits propagate upward; deletion is lazy (no rebalancing — vacated
/// space is reused by later inserts, matching the workload pattern of the
/// modeled system where histories only grow).
///
/// Concurrency: a tree-wide reader/writer latch. Reads (Get, Scan,
/// Floor, ...) may run concurrently with each other; Put/Delete take the
/// latch exclusively. Scan callbacks run under the shared latch, so they
/// must not call back into the same tree.
class BTree {
 public:
  /// Opens (formatting if empty) the tree stored in file `name`.
  static Result<std::unique_ptr<BTree>> Open(BufferPool* pool,
                                             const std::string& name);

  /// Inserts or overwrites `key`.
  Status Put(const Slice& key, uint64_t value);

  /// Point lookup; NotFound if absent.
  Result<uint64_t> Get(const Slice& key) const;

  /// Removes `key`; NotFound if absent.
  Status Delete(const Slice& key);

  /// Calls fn(key, value) for every entry with lower <= key < upper
  /// (empty `upper` == unbounded), in key order; stops early when fn
  /// returns false.
  Status Scan(const Slice& lower, const Slice& upper,
              const std::function<Result<bool>(const Slice&, uint64_t)>& fn)
      const;

  /// Calls fn for every entry whose key starts with `prefix`, in order.
  Status ScanPrefix(
      const Slice& prefix,
      const std::function<Result<bool>(const Slice&, uint64_t)>& fn) const;

  /// Greatest entry with key <= target (floor); NotFound when none.
  Result<std::pair<std::string, uint64_t>> Floor(const Slice& target) const;

  /// Number of live entries.
  uint64_t Size() const {
    std::shared_lock<std::shared_mutex> lock(latch_);
    return entry_count_;
  }

  /// Tree height (1 == root is a leaf).
  Result<uint32_t> Height() const;

  /// Exhaustive structural check: uniform leaf depth, strictly sorted
  /// keys respecting every separator bound, internal child counts, the
  /// left-to-right leaf chain, and the persisted entry count. Read-only;
  /// returns Corruption describing the first violation.
  Status VerifyStructure() const;

  FileId file_id() const { return file_; }

 private:
  BTree(BufferPool* pool, FileId file) : pool_(pool), file_(file) {}

  // In-memory image of one node page.
  struct Node {
    bool is_leaf = true;
    PageNo next_leaf = kInvalidPageNo;
    std::vector<std::string> keys;
    // Leaves: values[i] pairs with keys[i].
    // Internal: children.size() == keys.size() + 1; keys[i] is the lowest
    // key reachable under children[i + 1].
    std::vector<uint64_t> values;
    std::vector<PageNo> children;
  };

  Status LoadOrFormat(const std::string& name);
  Status SaveMeta();
  Result<Node> ReadNode(PageNo page) const;
  Status WriteNode(PageNo page, const Node& node);
  Result<PageNo> AllocNode();
  static size_t NodeSize(const Node& node);
  static int LowerBound(const Node& node, const Slice& key);

  struct SplitResult {
    bool split = false;
    std::string sep_key;    // lowest key of the new right sibling
    PageNo right_page = kInvalidPageNo;
  };

  /// Recursive insert; reports a split of `page` to the caller.
  Result<SplitResult> InsertRec(PageNo page, const Slice& key, uint64_t value,
                                bool* replaced);

  /// Descends to the leaf that may contain `key`.
  Result<PageNo> FindLeaf(const Slice& key) const;

  /// Scan body, caller holds the latch (shared or exclusive).
  Status ScanLocked(
      const Slice& lower, const Slice& upper,
      const std::function<Result<bool>(const Slice&, uint64_t)>& fn) const;

  /// Accumulated observations of a VerifyStructure walk.
  struct VerifyState {
    uint32_t leaf_depth = 0;      // depth of the first leaf seen (0 = none)
    uint64_t entries = 0;
    std::vector<PageNo> leaves;   // in key order
  };

  /// Recursive check of the subtree at `page`; every key must fall in
  /// [lower, upper) when the respective bound is present.
  Status VerifyRec(PageNo page, uint32_t depth, const std::string* lower,
                   const std::string* upper, VerifyState* vs) const;

  BufferPool* pool_;
  FileId file_;
  // Tree-wide reader/writer latch: shared for lookups and scans,
  // exclusive for Put/Delete (writes stay single-threaded upstream, the
  // exclusive mode just keeps concurrent readers out mid-split).
  mutable std::shared_mutex latch_;
  PageNo root_ = kInvalidPageNo;
  uint64_t entry_count_ = 0;
};

}  // namespace tcob

#endif  // TCOB_INDEX_BTREE_H_
