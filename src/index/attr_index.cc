#include "index/attr_index.h"

#include <algorithm>

#include "common/coding.h"

namespace tcob {

std::string ValueRange::ToString() const {
  std::string out;
  if (lower.has_value()) {
    out += lower_inclusive ? "[" : "(";
    out += lower->ToString();
  } else {
    out += "(-inf";
  }
  out += " .. ";
  if (upper.has_value()) {
    out += upper->ToString();
    out += upper_inclusive ? "]" : ")";
  } else {
    out += "+inf)";
  }
  return out;
}

Result<BTree*> AttrIndexManager::TreeOf(IndexId id) const {
  std::lock_guard<std::mutex> lock(trees_mu_);
  auto it = trees_.find(id);
  if (it != trees_.end()) return it->second.get();
  TCOB_ASSIGN_OR_RETURN(
      std::unique_ptr<BTree> tree,
      BTree::Open(pool_, "attridx_" + std::to_string(id)));
  BTree* raw = tree.get();
  trees_[id] = std::move(tree);
  return raw;
}

Status AttrIndexManager::EncodeComparableValue(const Value& v,
                                               std::string* dst) {
  if (v.is_null()) {
    return Status::InvalidArgument("NULL values are not indexed");
  }
  switch (v.type()) {
    case AttrType::kBool:
      dst->push_back(v.AsBool() ? 1 : 0);
      return Status::OK();
    case AttrType::kInt:
      PutComparableI64(dst, v.AsInt());
      return Status::OK();
    case AttrType::kDouble:
      PutComparableDouble(dst, v.AsDouble());
      return Status::OK();
    case AttrType::kString:
      // Strings order bytewise; terminate with 0x00 so no encoded string
      // is a prefix of another entry's value part. (Embedded NULs are
      // therefore not supported in indexed strings.)
      dst->append(v.AsString());
      dst->push_back('\0');
      return Status::OK();
    case AttrType::kTimestamp:
      PutComparableI64(dst, v.AsTime());
      return Status::OK();
    case AttrType::kId:
      PutComparableU64(dst, v.AsId());
      return Status::OK();
  }
  return Status::Internal("unhandled value type");
}

Status AttrIndexManager::EncodeEntryKey(const Value& v, AtomId id,
                                        Timestamp begin, std::string* dst) {
  TCOB_RETURN_NOT_OK(EncodeComparableValue(v, dst));
  PutComparableU64(dst, id);
  PutComparableI64(dst, begin);
  return Status::OK();
}

Status AttrIndexManager::PutEntry(const AttrIndexDef& def, const Value& v,
                                  AtomId id, const Interval& valid) {
  if (v.is_null()) return Status::OK();  // NULLs are not indexed
  TCOB_ASSIGN_OR_RETURN(BTree * tree, TreeOf(def.id));
  std::string key;
  TCOB_RETURN_NOT_OK(EncodeEntryKey(v, id, valid.begin, &key));
  return tree->Put(key, static_cast<uint64_t>(valid.end));
}

Status AttrIndexManager::OnInsert(const AtomTypeDef& type, AtomId id,
                                  const std::vector<Value>& attrs,
                                  Timestamp from) {
  for (const AttrIndexDef* def : catalog_->AttrIndexesOf(type.id)) {
    if (def->attr_pos >= attrs.size()) continue;
    TCOB_RETURN_NOT_OK(
        PutEntry(*def, attrs[def->attr_pos], id, Interval(from, kForever)));
  }
  return Status::OK();
}

Status AttrIndexManager::OnUpdate(const AtomTypeDef& type, AtomId id,
                                  const AtomVersion& old_version,
                                  const std::vector<Value>& attrs,
                                  Timestamp from) {
  for (const AttrIndexDef* def : catalog_->AttrIndexesOf(type.id)) {
    if (def->attr_pos >= attrs.size()) continue;
    // Close the outgoing version's entry and open the successor's.
    TCOB_RETURN_NOT_OK(PutEntry(*def, old_version.attrs[def->attr_pos], id,
                                Interval(old_version.valid.begin, from)));
    TCOB_RETURN_NOT_OK(
        PutEntry(*def, attrs[def->attr_pos], id, Interval(from, kForever)));
  }
  return Status::OK();
}

Status AttrIndexManager::OnDelete(const AtomTypeDef& type, AtomId id,
                                  const AtomVersion& old_version,
                                  Timestamp from) {
  for (const AttrIndexDef* def : catalog_->AttrIndexesOf(type.id)) {
    TCOB_RETURN_NOT_OK(PutEntry(*def, old_version.attrs[def->attr_pos], id,
                                Interval(old_version.valid.begin, from)));
  }
  return Status::OK();
}

Status AttrIndexManager::Backfill(const AttrIndexDef& def,
                                  const AtomTypeDef& type,
                                  const TemporalAtomStore& store) {
  return store.ScanVersions(
      type, Interval::All(), [&](const AtomVersion& v) -> Result<bool> {
        TCOB_RETURN_NOT_OK(PutEntry(def, v.attrs[def.attr_pos], v.id, v.valid));
        return true;
      });
}

Result<std::vector<AtomId>> AttrIndexManager::LookupAsOf(
    const AttrIndexDef& def, const ValueRange& range, Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(BTree * tree, TreeOf(def.id));
  // Build the scan bounds over the value prefix.
  std::string lower;
  if (range.lower.has_value()) {
    TCOB_RETURN_NOT_OK(EncodeComparableValue(*range.lower, &lower));
    if (!range.lower_inclusive) {
      // Skip all entries with exactly this value: extend past the value
      // prefix with 0xFF filler beyond any (id, begin) suffix.
      lower.append(17, '\xff');
    }
  }
  std::string upper;
  if (range.upper.has_value()) {
    TCOB_RETURN_NOT_OK(EncodeComparableValue(*range.upper, &upper));
    if (range.upper_inclusive) {
      upper.append(17, '\xff');
    }
  }
  std::vector<AtomId> out;
  Status scan = tree->Scan(
      lower, upper, [&](const Slice& key, uint64_t end) -> Result<bool> {
        // Suffix layout: ... [id:8][begin:8]; the value part is whatever
        // precedes it.
        if (key.size() < 16) return Status::Corruption("short index key");
        const char* suffix = key.data() + key.size() - 16;
        AtomId id = DecodeComparableU64(suffix);
        Timestamp begin = DecodeComparableI64(suffix + 8);
        Timestamp end_ts = static_cast<Timestamp>(end);
        if (begin <= t && t < end_ts) out.push_back(id);
        return true;
      });
  TCOB_RETURN_NOT_OK(scan);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<uint64_t> AttrIndexManager::VacuumBefore(Timestamp cutoff) {
  uint64_t removed = 0;
  for (const AttrIndexDef* def : catalog_->AttrIndexes()) {
    TCOB_ASSIGN_OR_RETURN(BTree * tree, TreeOf(def->id));
    std::vector<std::string> victims;
    TCOB_RETURN_NOT_OK(tree->Scan(
        Slice(""), Slice(),
        [&](const Slice& key, uint64_t end) -> Result<bool> {
          if (static_cast<Timestamp>(end) <= cutoff) {
            victims.push_back(key.ToString());
          }
          return true;
        }));
    for (const std::string& key : victims) {
      TCOB_RETURN_NOT_OK(tree->Delete(key));
      ++removed;
    }
  }
  return removed;
}

Status AttrIndexManager::VerifyStructure() const {
  for (const AttrIndexDef* def : catalog_->AttrIndexes()) {
    TCOB_ASSIGN_OR_RETURN(BTree * tree, TreeOf(def->id));
    Status s = tree->VerifyStructure();
    if (!s.ok()) {
      return Status::Corruption("attribute index " + def->name + ": " +
                                s.message());
    }
  }
  return Status::OK();
}

Result<uint64_t> AttrIndexManager::TotalPages() const {
  std::lock_guard<std::mutex> lock(trees_mu_);
  uint64_t pages = 0;
  for (const auto& [id, tree] : trees_) {
    (void)id;
    TCOB_ASSIGN_OR_RETURN(PageNo n, pool_->disk()->NumPages(tree->file_id()));
    pages += n;
  }
  return pages;
}

}  // namespace tcob
