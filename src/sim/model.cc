#include "sim/model.h"

#include <algorithm>

namespace tcob::sim {

namespace {

/// Canonical row encoding: Value::ToString per column, '|'-joined.
/// Attribute strings are lowercase ASCII (the generator's alphabet), so
/// '|' can never appear inside a column.
void AppendColumn(std::string* row, const Value& v) {
  if (!row->empty()) *row += '|';
  *row += v.ToString();
}

}  // namespace

// ---- mutations --------------------------------------------------------

AtomId SimModel::InsertAtom(
    uint32_t type_pos, const std::vector<std::pair<uint32_t, Value>>& set,
    Timestamp from) {
  AtomId id = next_id_;
  InsertAtomWithId(id, type_pos, set, from);
  return id;
}

void SimModel::InsertAtomWithId(
    AtomId id, uint32_t type_pos,
    const std::vector<std::pair<uint32_t, Value>>& set, Timestamp from) {
  const SimAtomTypeDef& def = schema_->atom_types[type_pos];
  ModelAtom atom;
  atom.type_pos = type_pos;
  ModelVersion v;
  v.valid = Interval(from, kForever);
  for (const SimAttrDef& a : def.attrs) v.attrs.push_back(Value::Null(a.type));
  for (const auto& [pos, value] : set) v.attrs[pos] = value;
  atom.versions.push_back(std::move(v));
  atoms_[id] = std::move(atom);
  if (id >= next_id_) next_id_ = id + 1;
}

bool SimModel::CanUpdate(uint32_t type_pos, AtomId id, Timestamp) const {
  // Strictly-increasing sim timestamps make "valid just before `from`"
  // equivalent to "last version open-ended" (a closed version always
  // ended at an earlier op's timestamp).
  auto it = atoms_.find(id);
  return it != atoms_.end() && it->second.type_pos == type_pos &&
         !it->second.versions.empty() &&
         it->second.versions.back().valid.open_ended();
}

void SimModel::UpdateAtom(
    uint32_t type_pos, AtomId id,
    const std::vector<std::pair<uint32_t, Value>>& set, Timestamp from) {
  (void)type_pos;
  ModelAtom& atom = atoms_.at(id);
  ModelVersion next = atom.versions.back();  // carry unchanged attrs over
  atom.versions.back().valid.end = from;
  next.valid = Interval(from, kForever);
  for (const auto& [pos, value] : set) next.attrs[pos] = value;
  atom.versions.push_back(std::move(next));
}

bool SimModel::CanDelete(uint32_t type_pos, AtomId id, Timestamp from) const {
  return CanUpdate(type_pos, id, from);
}

void SimModel::DeleteAtom(uint32_t, AtomId id, Timestamp from) {
  if (bug_ == ModelBug::kIgnoreDeletes) return;  // planted defect
  atoms_.at(id).versions.back().valid.end = from;
}

bool SimModel::CanConnect(uint32_t link_pos, AtomId from, AtomId to) const {
  auto it = links_.find(LinkKey{link_pos, from, to});
  return it == links_.end() || it->second.empty() ||
         !it->second.back().open_ended();
}

void SimModel::Connect(uint32_t link_pos, AtomId from, AtomId to,
                       Timestamp at) {
  links_[LinkKey{link_pos, from, to}].push_back(Interval(at, kForever));
}

bool SimModel::CanDisconnect(uint32_t link_pos, AtomId from,
                             AtomId to) const {
  auto it = links_.find(LinkKey{link_pos, from, to});
  return it != links_.end() && !it->second.empty() &&
         it->second.back().open_ended();
}

void SimModel::Disconnect(uint32_t link_pos, AtomId from, AtomId to,
                          Timestamp at) {
  links_.at(LinkKey{link_pos, from, to}).back().end = at;
}

uint64_t SimModel::VacuumBefore(Timestamp cutoff) {
  uint64_t removed = 0;
  for (auto it = atoms_.begin(); it != atoms_.end();) {
    auto& versions = it->second.versions;
    size_t before = versions.size();
    versions.erase(std::remove_if(versions.begin(), versions.end(),
                                  [&](const ModelVersion& v) {
                                    return v.valid.end <= cutoff;
                                  }),
                   versions.end());
    removed += before - versions.size();
    it = versions.empty() ? atoms_.erase(it) : std::next(it);
  }
  for (auto it = links_.begin(); it != links_.end();) {
    auto& ivs = it->second;
    ivs.erase(std::remove_if(
                  ivs.begin(), ivs.end(),
                  [&](const Interval& iv) { return iv.end <= cutoff; }),
              ivs.end());
    it = ivs.empty() ? links_.erase(it) : std::next(it);
  }
  return removed;
}

void SimModel::NoteUncertainVacuum(Timestamp cutoff) {
  horizon_ = std::max(horizon_, cutoff);
}

// ---- introspection ----------------------------------------------------

std::vector<AtomId> SimModel::AtomsOfType(uint32_t type_pos) const {
  std::vector<AtomId> out;
  for (const auto& [id, atom] : atoms_) {
    if (atom.type_pos == type_pos) out.push_back(id);
  }
  return out;
}

bool SimModel::AliveNow(AtomId id) const {
  auto it = atoms_.find(id);
  return it != atoms_.end() && !it->second.versions.empty() &&
         it->second.versions.back().valid.open_ended();
}

std::vector<std::pair<AtomId, AtomId>> SimModel::OpenLinks(
    uint32_t link_pos) const {
  std::vector<std::pair<AtomId, AtomId>> out;
  for (const auto& [key, ivs] : links_) {
    if (std::get<0>(key) == link_pos && !ivs.empty() &&
        ivs.back().open_ended()) {
      out.emplace_back(std::get<1>(key), std::get<2>(key));
    }
  }
  return out;
}

// ---- query internals --------------------------------------------------

const ModelVersion* SimModel::VersionAt(AtomId id, Timestamp t) const {
  auto it = atoms_.find(id);
  if (it == atoms_.end()) return nullptr;
  for (const ModelVersion& v : it->second.versions) {
    if (v.valid.Contains(t)) return &v;
  }
  return nullptr;
}

bool SimModel::AliveAt(AtomId id, Timestamp t) const {
  return VersionAt(id, t) != nullptr;
}

std::map<AtomId, const ModelVersion*> SimModel::Materialize(
    uint32_t mol_pos, AtomId root, Timestamp t, bool* missing,
    bool* uncertain) const {
  const SimMoleculeTypeDef& mol = schema_->molecule_types[mol_pos];
  std::map<AtomId, const ModelVersion*> out;
  const ModelVersion* rv = VersionAt(root, t);
  if (rv == nullptr) return out;
  out[root] = rv;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [link_pos, forward] : mol.edges) {
      const SimLinkTypeDef& link = schema_->link_types[link_pos];
      uint32_t source_type = forward ? link.from_pos : link.to_pos;
      uint32_t target_type = forward ? link.to_pos : link.from_pos;
      std::vector<AtomId> sources;
      for (const auto& [id, v] : out) {
        (void)v;
        if (atoms_.at(id).type_pos == source_type) sources.push_back(id);
      }
      for (AtomId source : sources) {
        for (const auto& [key, ivs] : links_) {
          if (std::get<0>(key) != link_pos) continue;
          AtomId partner;
          if (forward) {
            if (std::get<1>(key) != source) continue;
            partner = std::get<2>(key);
          } else {
            if (std::get<2>(key) != source) continue;
            partner = std::get<1>(key);
          }
          bool connected_at_t = false;
          for (const Interval& iv : ivs) connected_at_t |= iv.Contains(t);
          if (!connected_at_t || out.count(partner)) continue;
          auto pit = atoms_.find(partner);
          if (pit == atoms_.end() || pit->second.type_pos != target_type) {
            // Zero versions in the target type's store (never inserted,
            // fully vacuumed, or stored under another type): the store
            // answers NotFound and the materializer propagates it as an
            // error rather than skipping the partner.
            if (missing != nullptr) *missing = true;
            continue;
          }
          const ModelVersion* pv = VersionAt(partner, t);
          if (pv == nullptr) {
            // Dead partner: an ok-but-empty lookup, skipped — unless an
            // interrupted vacuum may have removed every version, in
            // which case the store may answer NotFound instead.
            if (uncertain != nullptr &&
                pit->second.versions.back().valid.end <= horizon_) {
              *uncertain = true;
            }
            continue;
          }
          out[partner] = pv;
          changed = true;
        }
      }
    }
  }
  return out;
}

std::vector<Timestamp> SimModel::Boundaries(const Interval& window) const {
  std::set<Timestamp> points;
  auto add = [&](Timestamp t) {
    if (t > window.begin && t < window.end) points.insert(t);
  };
  for (const auto& [id, atom] : atoms_) {
    (void)id;
    for (const ModelVersion& v : atom.versions) {
      add(v.valid.begin);
      if (!v.valid.open_ended()) add(v.valid.end);
    }
  }
  for (const auto& [key, ivs] : links_) {
    (void)key;
    for (const Interval& iv : ivs) {
      add(iv.begin);
      if (!iv.open_ended()) add(iv.end);
    }
  }
  std::vector<Timestamp> out;
  out.push_back(window.begin);
  out.insert(out.end(), points.begin(), points.end());
  return out;
}

bool SimModel::WherePredicate(const SimOp& q, const ModelVersion& v) const {
  const Value& a = v.attrs[q.where_attr_pos];
  // Mirrors ExprEvaluator::EvalBinary's NULL rules (the literal is
  // never NULL): = is false, != is true, orderings are false.
  if (a.is_null()) return q.where_op == BinaryOp::kNe;
  int64_t x = a.AsInt();
  switch (q.where_op) {
    case BinaryOp::kEq: return x == q.where_lit;
    case BinaryOp::kNe: return x != q.where_lit;
    case BinaryOp::kLt: return x < q.where_lit;
    case BinaryOp::kLe: return x <= q.where_lit;
    case BinaryOp::kGt: return x > q.where_lit;
    case BinaryOp::kGe: return x >= q.where_lit;
    default: return false;
  }
}

bool SimModel::EvalWhere(
    const SimOp& q,
    const std::map<AtomId, const ModelVersion*>& atoms) const {
  if (!q.has_where) return true;
  // Existential over the molecule's atoms of the predicate's type.
  for (const auto& [id, v] : atoms) {
    if (atoms_.at(id).type_pos == q.where_type_pos && WherePredicate(q, *v)) {
      return true;
    }
  }
  return false;
}

std::string SimModel::RenderAttrs(uint32_t type_pos,
                                  const std::vector<Value>& attrs) const {
  const SimAtomTypeDef& def = schema_->atom_types[type_pos];
  std::string out;
  for (size_t i = 0; i < def.attrs.size(); ++i) {
    if (i) out += ", ";
    out += def.attrs[i].name + "=" + attrs[i].ToString();
  }
  return out;
}

void SimModel::EmitRows(const SimOp& q, AtomId root,
                        const std::map<AtomId, const ModelVersion*>& atoms,
                        const Interval* segment,
                        std::multiset<std::string>* out) const {
  auto prefix = [&]() {
    std::string row;
    AppendColumn(&row, Value::Id(root));
    if (segment != nullptr) {
      AppendColumn(&row, Value::Time(segment->begin));
      AppendColumn(&row, Value::Time(segment->end));
    }
    return row;
  };

  bool select_all = q.qkind == SimQueryKind::kAllAsOf ||
                    q.qkind == SimQueryKind::kAllWindow ||
                    q.qkind == SimQueryKind::kAllHistory;
  if (select_all) {
    if (!EvalWhere(q, atoms)) return;
    for (const auto& [id, v] : atoms) {
      uint32_t tp = atoms_.at(id).type_pos;
      std::string row = prefix();
      AppendColumn(&row, Value::Id(id));
      AppendColumn(&row, Value::String(schema_->atom_types[tp].name));
      AppendColumn(&row, Value::String(RenderAttrs(tp, v->attrs)));
      out->insert(std::move(row));
    }
    return;
  }

  // Projection: bindings over projected + predicate types, existential
  // predicate, rows deduped per state by the projected atoms' ids.
  std::vector<uint32_t> btypes;
  for (const auto& [tp, ap] : q.proj) {
    (void)ap;
    btypes.push_back(tp);
  }
  if (q.has_where) btypes.push_back(q.where_type_pos);
  std::sort(btypes.begin(), btypes.end());
  btypes.erase(std::unique(btypes.begin(), btypes.end()), btypes.end());

  std::vector<std::vector<std::pair<AtomId, const ModelVersion*>>> domains;
  for (uint32_t tp : btypes) {
    std::vector<std::pair<AtomId, const ModelVersion*>> domain;
    for (const auto& [id, v] : atoms) {
      if (atoms_.at(id).type_pos == tp) domain.emplace_back(id, v);
    }
    if (domain.empty()) return;  // unsatisfiable binding set
    domains.push_back(std::move(domain));
  }

  std::set<std::vector<AtomId>> seen;
  std::vector<size_t> odo(domains.size(), 0);
  while (true) {
    // One binding: btypes[i] -> domains[i][odo[i]].
    auto bound = [&](uint32_t tp) {
      size_t i = std::lower_bound(btypes.begin(), btypes.end(), tp) -
                 btypes.begin();
      return domains[i][odo[i]];
    };
    bool ok = true;
    if (q.has_where) {
      auto [id, v] = bound(q.where_type_pos);
      (void)id;
      ok = WherePredicate(q, *v);
    }
    if (ok) {
      std::vector<AtomId> fingerprint;
      std::string row = prefix();
      for (const auto& [tp, ap] : q.proj) {
        auto [id, v] = bound(tp);
        fingerprint.push_back(id);
        AppendColumn(&row, v->attrs[ap]);
      }
      if (seen.insert(fingerprint).second) out->insert(std::move(row));
    }
    // Advance the odometer.
    size_t d = 0;
    for (; d < odo.size(); ++d) {
      if (++odo[d] < domains[d].size()) break;
      odo[d] = 0;
    }
    if (d == odo.size()) break;
    if (domains.empty()) break;
  }
  if (domains.empty()) {
    // No binding types (cannot happen for projections: proj is
    // non-empty) — nothing to emit.
  }
}

// ---- query oracle -----------------------------------------------------

SimModel::QueryExpectation SimModel::ExpectedRows(const SimOp& q) const {
  const SimMoleculeTypeDef& mol = schema_->molecule_types[q.mol_pos];
  QueryExpectation out;

  // Column headers (mirrors SelectExecutor::Execute).
  bool windowed = q.qkind == SimQueryKind::kAllWindow ||
                  q.qkind == SimQueryKind::kAllHistory ||
                  q.qkind == SimQueryKind::kProjWindow;
  if (q.qkind == SimQueryKind::kCountAsOf) {
    if (q.group_by_root) out.columns.push_back("ROOT");
    out.columns.push_back("COUNT(*)");
  } else {
    out.columns.push_back("ROOT");
    if (windowed) {
      out.columns.push_back("VALID_FROM");
      out.columns.push_back("VALID_TO");
    }
    if (q.qkind == SimQueryKind::kAllAsOf ||
        q.qkind == SimQueryKind::kAllWindow ||
        q.qkind == SimQueryKind::kAllHistory) {
      out.columns.push_back("ATOM");
      out.columns.push_back("TYPE");
      out.columns.push_back("ATTRS");
    } else {
      for (const auto& [tp, ap] : q.proj) {
        out.columns.push_back(schema_->atom_types[tp].name + "." +
                              schema_->atom_types[tp].attrs[ap].name);
      }
    }
  }

  if (!windowed) {
    Timestamp t = q.q_at;
    if (t < horizon_) {
      out.skip_compare = true;  // uncertain vacuum could mask this slice
      return out;
    }
    // Mirror PlanRootAccess: an as-of WHERE conjunct `root_type.attr
    // <cmp> literal` (cmp != `!=`) with an index on that attribute makes
    // the executor look up candidate roots in the index instead of
    // scanning — roots whose own attribute misses the range are never
    // materialized at all (their molecules contribute nothing, and a
    // dangling link inside them cannot fail the statement).
    bool index_plan = false;
    if (q.has_where && q.where_op != BinaryOp::kNe &&
        q.where_type_pos == mol.root_pos) {
      for (const SimIndexDef& ix : schema_->indexes) {
        if (ix.type_pos == mol.root_pos && ix.attr_pos == q.where_attr_pos) {
          index_plan = true;
        }
      }
    }
    uint64_t count = 0;
    bool statement_fails = false;
    bool uncertain = false;
    for (AtomId root : AtomsOfType(mol.root_pos)) {
      if (!AliveAt(root, t)) continue;
      if (index_plan && !WherePredicate(q, *VersionAt(root, t))) continue;
      bool missing = false;
      std::map<AtomId, const ModelVersion*> atoms =
          Materialize(q.mol_pos, root, t, &missing, &uncertain);
      if (missing) {
        // Full scan: the NotFound from the zero-version partner fails
        // the whole statement. Index path: MoleculesAsOf treats NotFound
        // as an index false positive and silently drops the root.
        if (!index_plan) statement_fails = true;
        continue;
      }
      if (q.qkind == SimQueryKind::kCountAsOf) {
        if (!EvalWhere(q, atoms)) continue;
        if (q.group_by_root) {
          std::string row;
          AppendColumn(&row, Value::Id(root));
          AppendColumn(&row, Value::Int(1));
          out.rows.insert(std::move(row));
        } else {
          ++count;
        }
      } else {
        EmitRows(q, root, atoms, nullptr, &out.rows);
      }
    }
    if (statement_fails) {
      // The reached set is insensitive to `uncertain` partners (dead
      // atoms never extend the frontier), so the error is certain.
      out.expect_error = true;
      out.error_is_not_found = true;
      out.rows.clear();
      return out;
    }
    if (uncertain) {
      // Whether the statement errors depends on whether an interrupted
      // vacuum committed: execute it, accept any outcome.
      out.skip_compare = true;
      out.rows.clear();
      return out;
    }
    if (q.qkind == SimQueryKind::kCountAsOf && !q.group_by_root) {
      out.rows.insert(Value::Int(static_cast<int64_t>(count)).ToString());
    }
    return out;
  }

  Interval window = q.qkind == SimQueryKind::kAllHistory ? Interval::All()
                                                         : q.q_window;
  if (window.empty()) {
    out.expect_error = true;  // executor: InvalidArgument("empty ...")
    return out;
  }
  if (window.begin < horizon_) {
    // The window reaches below the uncertain-vacuum horizon, where even
    // the model's own state is unreliable: a below-horizon segment may
    // hit a maybe-vacuumed atom and fail the whole statement. Execute
    // without comparing.
    out.skip_compare = true;
    return out;
  }
  std::vector<Timestamp> bounds = Boundaries(window);
  bool uncertain = false;
  for (AtomId root : AtomsOfType(mol.root_pos)) {
    bool in_window = false;
    for (const ModelVersion& v : atoms_.at(root).versions) {
      in_window |= v.valid.Overlaps(window);
    }
    if (!in_window) continue;
    for (size_t i = 0; i < bounds.size(); ++i) {
      Interval segment(bounds[i],
                       i + 1 < bounds.size() ? bounds[i + 1] : window.end);
      if (segment.end <= horizon_) continue;
      if (!AliveAt(root, segment.begin)) continue;
      bool missing = false;
      std::map<AtomId, const ModelVersion*> atoms =
          Materialize(q.mol_pos, root, segment.begin, &missing, &uncertain);
      // Unlike the as-of store path, the history sweep renders a state
      // that reaches a zero-version atom as a *gap* (no rows for this
      // segment), not an error — see Materializer::HistorySweep.
      if (missing) continue;
      EmitRows(q, root, atoms, &segment, &out.rows);
    }
  }
  if (uncertain) {
    out.skip_compare = true;
    out.rows.clear();
    return out;
  }
  return out;
}

Result<std::multiset<std::string>> SimModel::CanonicalizeDb(
    const SimOp& q, const ResultSet& rs) const {
  bool windowed = q.qkind == SimQueryKind::kAllWindow ||
                  q.qkind == SimQueryKind::kAllHistory ||
                  q.qkind == SimQueryKind::kProjWindow;
  std::multiset<std::string> out;
  if (!windowed) {
    for (const auto& row : rs.rows) {
      std::string r;
      for (const Value& v : row) AppendColumn(&r, v);
      out.insert(std::move(r));
    }
    return out;
  }
  Interval window = q.qkind == SimQueryKind::kAllHistory ? Interval::All()
                                                         : q.q_window;
  std::vector<Timestamp> bounds = Boundaries(window);
  for (const auto& row : rs.rows) {
    if (row.size() < 3) {
      return Status::Internal("windowed row with fewer than 3 columns");
    }
    Timestamp from = row[1].AsTime();
    Timestamp to = row[2].AsTime();
    // Split [from, to) at every model changepoint strictly inside it;
    // the database's coalesced states may span several model segments.
    std::vector<Timestamp> cuts = {from};
    for (Timestamp b : bounds) {
      if (b > from && b < to) cuts.push_back(b);
    }
    cuts.push_back(to);
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] <= horizon_) continue;
      std::string r;
      AppendColumn(&r, row[0]);
      AppendColumn(&r, Value::Time(cuts[i]));
      AppendColumn(&r, Value::Time(cuts[i + 1]));
      for (size_t c = 3; c < row.size(); ++c) AppendColumn(&r, row[c]);
      out.insert(std::move(r));
    }
  }
  return out;
}

std::string SimModel::StateDigest() const {
  std::string out = "horizon=" + std::to_string(horizon_) + "\n";
  for (const auto& [id, atom] : atoms_) {
    out += "atom #" + std::to_string(id) + " " +
           schema_->atom_types[atom.type_pos].name;
    for (const ModelVersion& v : atom.versions) {
      out += " [" + std::to_string(v.valid.begin) + "," +
             std::to_string(v.valid.end) + "){" +
             RenderAttrs(atom.type_pos, v.attrs) + "}";
    }
    out += "\n";
  }
  for (const auto& [key, intervals] : links_) {
    const auto& [link_pos, from, to] = key;
    out += "link " + schema_->link_types[link_pos].name + " #" +
           std::to_string(from) + "->#" + std::to_string(to);
    for (const Interval& iv : intervals) {
      out += " [" + std::to_string(iv.begin) + "," + std::to_string(iv.end) +
             ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace tcob::sim
