#include "sim/shrink.h"

#include <algorithm>

namespace tcob::sim {

namespace {

SimWorkload MakeCandidate(const SimWorkload& base, std::vector<SimOp> ops) {
  SimWorkload c;
  c.seed = base.seed;
  c.schema = base.schema;
  CanonicalizeAtomIds(&ops);
  c.ops = std::move(ops);
  return c;
}

}  // namespace

ShrinkResult ShrinkWorkload(const SimWorkload& w, const RunOptions& options,
                            size_t max_runs) {
  ShrinkResult out;
  out.workload = MakeCandidate(w, w.ops);
  out.failure = RunWorkload(out.workload, options);
  ++out.harness_runs;
  if (out.failure.ok) return out;  // nothing to shrink
  out.input_failed = true;

  std::vector<SimOp> current = out.workload.ops;
  size_t granularity = 2;
  while (current.size() >= 2 && out.harness_runs < max_runs) {
    size_t chunk = std::max<size_t>(1, current.size() / granularity);
    bool removed_any = false;
    for (size_t start = 0; start < current.size() && out.harness_runs < max_runs;) {
      size_t end = std::min(start + chunk, current.size());
      std::vector<SimOp> candidate;
      candidate.reserve(current.size() - (end - start));
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + start);
      candidate.insert(candidate.end(), current.begin() + end,
                       current.end());
      SimWorkload cw = MakeCandidate(w, std::move(candidate));
      RunResult rr = RunWorkload(cw, options);
      ++out.harness_runs;
      if (!rr.ok) {
        current = std::move(cw.ops);  // chunk was irrelevant: drop it
        out.failure = std::move(rr);
        removed_any = true;
        // `start` now points at the next chunk already.
      } else {
        start = end;
      }
    }
    if (removed_any) {
      granularity = std::max<size_t>(2, granularity - 1);
    } else {
      if (chunk == 1) break;  // 1-minimal: no single op removable
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  out.workload = MakeCandidate(w, std::move(current));
  return out;
}

}  // namespace tcob::sim
