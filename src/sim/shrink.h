#ifndef TCOB_SIM_SHRINK_H_
#define TCOB_SIM_SHRINK_H_

#include <cstddef>

#include "sim/harness.h"
#include "sim/workload.h"

namespace tcob::sim {

struct ShrinkResult {
  /// The minimized workload (same seed and schema, reduced op stream
  /// with canonicalized atom ids). If the input did not fail, this is
  /// the input unchanged.
  SimWorkload workload;
  /// The divergence the minimized workload still reproduces.
  RunResult failure;
  size_t harness_runs = 0;
  bool input_failed = false;
};

/// Delta-debugging (ddmin) over the op stream: repeatedly removes chunks
/// while RunWorkload(candidate, options) keeps failing, then re-tries at
/// finer granularity down to single ops. After every removal the atom
/// ids are re-canonicalized so surviving inserts keep allocating the ids
/// the ops claim; references to removed inserts become deliberately
/// dangling (the harness treats them as never-existed, which is exactly
/// what the database does).
///
/// `options` is typically {.single_instance = true} — the shrinker needs
/// the failure to reproduce, not the full matrix — but any options work
/// as long as the input fails under them.
ShrinkResult ShrinkWorkload(const SimWorkload& w, const RunOptions& options,
                            size_t max_runs = 2000);

}  // namespace tcob::sim

#endif  // TCOB_SIM_SHRINK_H_
