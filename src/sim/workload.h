#ifndef TCOB_SIM_WORKLOAD_H_
#define TCOB_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "query/ast.h"
#include "record/value.h"
#include "storage/fault_env.h"
#include "time/interval.h"

namespace tcob::sim {

// ---- random schema ----------------------------------------------------
//
// The simulation schema mirrors the catalog's DDL surface but refers to
// everything by position (index into the vectors below) so ops stay
// valid under delta-debugging: a shrunk op stream never dangles a name.

struct SimAttrDef {
  std::string name;
  AttrType type = AttrType::kInt;
};

struct SimAtomTypeDef {
  std::string name;
  std::vector<SimAttrDef> attrs;
};

struct SimLinkTypeDef {
  std::string name;
  uint32_t from_pos = 0;  // index into SimSchema::atom_types
  uint32_t to_pos = 0;
};

struct SimMoleculeTypeDef {
  std::string name;
  uint32_t root_pos = 0;
  /// (link_pos, forward) — connected by construction, cycles allowed.
  std::vector<std::pair<uint32_t, bool>> edges;
};

struct SimIndexDef {
  std::string name;
  uint32_t type_pos = 0;
  uint32_t attr_pos = 0;
};

struct SimSchema {
  std::vector<SimAtomTypeDef> atom_types;
  std::vector<SimLinkTypeDef> link_types;
  std::vector<SimMoleculeTypeDef> molecule_types;
  std::vector<SimIndexDef> indexes;

  /// Atom-type positions reachable by a molecule type (root + closure
  /// over its edge list).
  std::vector<uint32_t> InvolvedTypes(uint32_t mol_pos) const;
};

// ---- ops --------------------------------------------------------------

enum class SimOpKind {
  kInsert,
  kUpdate,
  kBadUpdate,  // intentionally invalid update: error-path probe
  kDelete,
  kConnect,
  kDisconnect,
  kCheckpoint,
  kReopen,
  kPowerCut,
  kVacuum,
  kTierMigrate,  // cold-history migration (logically invisible)
  kVerify,
  kQuery,
  /// Explicit transaction control over one of a small set of slots
  /// (`txn_slot`). DML ops carrying txn_slot >= 0 are buffered into
  /// that slot's open transaction instead of auto-committing; kTxnCommit
  /// runs first-committer-wins validation and group-commits the buffer.
  kTxnBegin,
  kTxnCommit,
  kTxnAbort,
};

enum class SimQueryKind {
  kAllAsOf,
  kAllWindow,
  kAllHistory,
  kCountAsOf,   // COUNT(*), optionally GROUP BY ROOT
  kProjAsOf,
  kProjWindow,
};

/// One step of a simulation: a flattened union over all op kinds (the
/// unused fields of a kind are ignored). Flat beats std::variant here
/// because the shrinker clones and rewrites traces wholesale.
struct SimOp {
  SimOpKind kind = SimOpKind::kInsert;

  /// Transaction slot: the slot a kTxnBegin/kTxnCommit/kTxnAbort targets,
  /// or — on a DML op — the open slot whose transaction buffers the op.
  /// -1 = auto-commit (the default). The harness treats a slotted DML op
  /// whose slot is not open (a cut or reopen discarded it) as
  /// auto-commit, so shrunk traces never dangle.
  int txn_slot = -1;

  // DML (insert / update / bad-update / delete)
  uint32_t type_pos = 0;
  AtomId atom = 0;  // insert: the id the op will allocate; others: target
  /// (attr_pos, value) assignments; insert leaves unlisted attrs NULL,
  /// update carries them over.
  std::vector<std::pair<uint32_t, Value>> set;

  // connect / disconnect
  uint32_t link_pos = 0;
  AtomId from = 0;
  AtomId to = 0;

  /// DML valid-from, vacuum cutoff (strictly increasing across the
  /// stream for DML, so interval constraints reduce to liveness).
  Timestamp at = 0;

  // power cut
  uint64_t cut_after_events = 0;  // relative to the env's current count
  CutMode cut_mode = CutMode::kDropUnsynced;

  // query
  SimQueryKind qkind = SimQueryKind::kAllAsOf;
  uint32_t mol_pos = 0;
  Timestamp q_at = 0;
  Interval q_window;
  bool group_by_root = false;
  bool has_where = false;
  uint32_t where_type_pos = 0;
  uint32_t where_attr_pos = 0;
  BinaryOp where_op = BinaryOp::kEq;
  int64_t where_lit = 0;
  /// Projection refs as (type_pos, attr_pos).
  std::vector<std::pair<uint32_t, uint32_t>> proj;

  // query governance (kQuery only; all off by default)
  /// Arm this deadline (microseconds) on the query. The harness treats a
  /// DeadlineExceeded result as legal and skips result comparison — a
  /// wall-clock race is not a divergence.
  uint64_t deadline_micros = 0;
  /// Cancel the query's cursor from a second thread mid-drain.
  bool cancel = false;
  /// Arm this many transient read failures (injected EIO the retry
  /// policy absorbs) just before the query runs.
  uint32_t transient_read_failures = 0;
};

struct SimWorkload {
  uint64_t seed = 0;
  SimSchema schema;
  /// Cold-history tiering configuration of the instance under test
  /// (seed-derived knobs; `tiering_enabled` mirrors the GenOptions gate).
  /// The oracle never sees it — tiering must be logically invisible.
  bool tiering_enabled = false;
  Timestamp tiering_cold_age = 16;
  uint64_t tiering_segment_bytes = 2048;
  /// Mirrors GenOptions::enable_transient_io: instances under a workload
  /// with this set open with a read-retry policy armed.
  bool transient_io_enabled = false;
  std::vector<SimOp> ops;
};

/// Atom ids at or above this are "never existed" by construction: a sim
/// stream cannot allocate this many atoms, so the generator, harness
/// and shrinker use the range for deliberately-dangling references.
inline constexpr AtomId kSimDanglingBase = 1ull << 40;

struct GenOptions {
  size_t num_ops = 300;
  bool enable_cuts = true;
  bool enable_vacuum = true;
  bool enable_tiering = true;
  /// Governed queries: random deadlines on ~1 in 8 queries, a
  /// cancel-from-a-second-thread on ~1 in 12.
  bool enable_cancel = true;
  /// Transient-EIO disk mode: some queries run with a couple of injected
  /// transient read failures that the instances' retry policy absorbs.
  bool enable_transient_io = true;
  /// Interleaved explicit transactions: ops scattered across 2-4
  /// concurrent snapshot-isolation transactions with begin/commit/abort
  /// control ops in the stream. Disabling strips the slot assignments
  /// and turns the control ops into kVerify — the DML/query stream is
  /// otherwise bit-identical (ablation: `fuzz_sim --no_txns`).
  bool enable_txns = true;
};

/// Deterministically expands one 64-bit seed into a schema + op stream.
SimWorkload GenerateWorkload(uint64_t seed, const GenOptions& options);

/// Human-readable one-line rendering (failure traces, artifacts).
std::string OpToString(const SimSchema& schema, const SimOp& op);

/// Renders the whole workload (schema + ops) for a failing-seed artifact.
std::string WorkloadToString(const SimWorkload& w);

/// The MQL text a kQuery op executes.
std::string QueryToMql(const SimSchema& schema, const SimOp& op);

/// Rewrites atom ids so that the i-th kInsert in the stream carries the
/// id the model will actually allocate for it (i.e. insertion order),
/// and references follow. References to inserts no longer present are
/// moved far above the allocatable range so they stay "never existed"
/// instead of aliasing a surviving atom. Called by the shrinker after
/// every chunk removal; a full stream is already canonical.
void CanonicalizeAtomIds(std::vector<SimOp>* ops);

}  // namespace tcob::sim

#endif  // TCOB_SIM_WORKLOAD_H_
