#include "sim/workload.h"

#include <algorithm>
#include <set>

#include "common/random.h"
#include "sim/model.h"

namespace tcob::sim {

namespace {

constexpr AtomId kDanglingBase = kSimDanglingBase;

AttrType PickAttrType(Random* rng) {
  switch (rng->Uniform(8)) {
    case 0:
    case 1:
    case 2: return AttrType::kInt;  // predicates need int attrs
    case 3: return AttrType::kString;
    case 4: return AttrType::kBool;
    case 5: return AttrType::kDouble;
    case 6: return AttrType::kTimestamp;
    default: return AttrType::kId;
  }
}

Value RandomValue(Random* rng, AttrType type) {
  switch (type) {
    case AttrType::kBool: return Value::Bool(rng->Bernoulli(0.5));
    case AttrType::kInt: return Value::Int(rng->UniformRange(-20, 99));
    case AttrType::kDouble:
      return Value::Double(static_cast<double>(rng->UniformRange(0, 400)) / 4);
    case AttrType::kString: return Value::String(rng->NextString(1 + rng->Uniform(4)));
    case AttrType::kTimestamp:
      return Value::Time(static_cast<Timestamp>(rng->UniformRange(0, 50)));
    case AttrType::kId:
      return Value::Id(static_cast<AtomId>(rng->UniformRange(1, 40)));
  }
  return Value::Int(0);
}

SimSchema GenerateSchema(Random* rng) {
  SimSchema schema;
  uint32_t num_types = 2 + static_cast<uint32_t>(rng->Uniform(3));
  for (uint32_t t = 0; t < num_types; ++t) {
    SimAtomTypeDef def;
    def.name = "t" + std::to_string(t);
    uint32_t num_attrs = 1 + static_cast<uint32_t>(rng->Uniform(4));
    for (uint32_t a = 0; a < num_attrs; ++a) {
      SimAttrDef attr;
      attr.name = "a" + std::to_string(a);
      // Attr 0 is always kInt so every type is predicate-eligible.
      attr.type = a == 0 ? AttrType::kInt : PickAttrType(rng);
      def.attrs.push_back(std::move(attr));
    }
    schema.atom_types.push_back(std::move(def));
  }
  uint32_t num_links = 2 + static_cast<uint32_t>(rng->Uniform(3));
  for (uint32_t l = 0; l < num_links; ++l) {
    SimLinkTypeDef def;
    def.name = "l" + std::to_string(l);
    def.from_pos = static_cast<uint32_t>(rng->Uniform(num_types));
    def.to_pos = static_cast<uint32_t>(rng->Uniform(num_types));  // cycles ok
    schema.link_types.push_back(std::move(def));
  }
  uint32_t num_mols = 1 + static_cast<uint32_t>(rng->Uniform(2));
  for (uint32_t m = 0; m < num_mols; ++m) {
    SimMoleculeTypeDef def;
    def.name = "m" + std::to_string(m);
    def.root_pos = static_cast<uint32_t>(rng->Uniform(num_types));
    // The catalog validates connectedness edge by edge: each edge's
    // source type must already be reached. Grow the edge list greedily
    // from the root; cycles and repeated links are fine as long as the
    // source side is reached.
    std::set<uint32_t> reached = {def.root_pos};
    uint32_t num_edges = 1 + static_cast<uint32_t>(rng->Uniform(4));
    for (uint32_t e = 0; e < num_edges; ++e) {
      std::vector<std::pair<uint32_t, bool>> candidates;
      for (uint32_t l = 0; l < num_links; ++l) {
        if (reached.count(schema.link_types[l].from_pos)) {
          candidates.emplace_back(l, true);
        }
        if (reached.count(schema.link_types[l].to_pos)) {
          candidates.emplace_back(l, false);
        }
      }
      if (candidates.empty()) break;  // no link touches the reached set
      auto [link_pos, forward] = candidates[rng->Uniform(candidates.size())];
      const SimLinkTypeDef& link = schema.link_types[link_pos];
      reached.insert(forward ? link.to_pos : link.from_pos);
      def.edges.emplace_back(link_pos, forward);
    }
    schema.molecule_types.push_back(std::move(def));
  }
  uint32_t num_idx = static_cast<uint32_t>(rng->Uniform(3));
  std::set<uint32_t> indexed;
  for (uint32_t i = 0; i < num_idx; ++i) {
    uint32_t type_pos = static_cast<uint32_t>(rng->Uniform(num_types));
    if (!indexed.insert(type_pos).second) continue;  // one per type
    SimIndexDef def;
    def.name = "ix" + std::to_string(i);
    def.type_pos = type_pos;
    def.attr_pos = 0;  // always kInt
    schema.indexes.push_back(std::move(def));
  }
  return schema;
}

/// Picks a random alive atom (any type), or 0 if none.
AtomId PickAlive(Random* rng, const SimModel& model) {
  std::vector<AtomId> alive;
  for (const auto& [id, atom] : model.atoms()) {
    (void)atom;
    if (model.AliveNow(id)) alive.push_back(id);
  }
  if (alive.empty()) return 0;
  return alive[rng->Uniform(alive.size())];
}

void GenerateQuery(Random* rng, const SimSchema& schema, Timestamp now,
                   const GenOptions& options, SimOp* op) {
  op->kind = SimOpKind::kQuery;
  // Governance knobs are drawn unconditionally so an ablated run
  // (--no_cancel / --no_transient_io) sees the exact same schema and op
  // stream; the gates only decide whether the drawn values take effect.
  const bool deadline_roll = rng->Bernoulli(0.125);
  const uint64_t deadline_us = 1 + rng->Uniform(500);
  const bool cancel_roll = rng->Bernoulli(0.08);
  const bool transient_roll = rng->Bernoulli(0.15);
  const uint32_t transient_n = 1 + static_cast<uint32_t>(rng->Uniform(2));
  if (options.enable_cancel) {
    if (deadline_roll) op->deadline_micros = deadline_us;
    op->cancel = cancel_roll;
  }
  if (options.enable_transient_io && transient_roll) {
    op->transient_read_failures = transient_n;
  }
  op->mol_pos = static_cast<uint32_t>(rng->Uniform(schema.molecule_types.size()));
  switch (rng->Uniform(10)) {
    case 0:
    case 1:
    case 2: op->qkind = SimQueryKind::kAllAsOf; break;
    case 3:
    case 4: op->qkind = SimQueryKind::kAllWindow; break;
    case 5: op->qkind = SimQueryKind::kAllHistory; break;
    case 6:
    case 7: op->qkind = SimQueryKind::kCountAsOf; break;
    case 8: op->qkind = SimQueryKind::kProjAsOf; break;
    default: op->qkind = SimQueryKind::kProjWindow; break;
  }
  // AS OF: half current, half strictly in the past.
  op->q_at = rng->Bernoulli(0.5)
                 ? now
                 : static_cast<Timestamp>(rng->UniformRange(1, now));
  // DURING window: occasionally deliberately empty (error-path probe).
  if (rng->Bernoulli(0.05)) {
    Timestamp a = rng->UniformRange(1, now + 2);
    op->q_window = Interval(a, a - rng->UniformRange(0, 2));
  } else {
    Timestamp a = rng->UniformRange(0, now + 2);
    op->q_window = Interval(a, a + 1 + rng->UniformRange(0, now));
  }
  std::vector<uint32_t> involved = schema.InvolvedTypes(op->mol_pos);
  auto pick_type = [&]() -> uint32_t {
    // Mostly molecule-involved types; sometimes any type (exercises the
    // unsatisfiable-binding path when it is not part of the molecule).
    if (!involved.empty() && rng->Bernoulli(0.8)) {
      return involved[rng->Uniform(involved.size())];
    }
    return static_cast<uint32_t>(rng->Uniform(schema.atom_types.size()));
  };
  op->group_by_root =
      op->qkind == SimQueryKind::kCountAsOf && rng->Bernoulli(0.5);
  bool projection = op->qkind == SimQueryKind::kProjAsOf ||
                    op->qkind == SimQueryKind::kProjWindow;
  op->has_where = rng->Bernoulli(projection ? 0.4 : 0.5);
  if (op->has_where) {
    op->where_type_pos = pick_type();
    op->where_attr_pos = 0;  // always kInt by construction
    constexpr BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                                 BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
    op->where_op = kOps[rng->Uniform(6)];
    op->where_lit = rng->UniformRange(-20, 99);
  }
  if (projection) {
    uint32_t n = 1 + static_cast<uint32_t>(rng->Uniform(2));
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t tp = pick_type();
      uint32_t ap = static_cast<uint32_t>(
          rng->Uniform(schema.atom_types[tp].attrs.size()));
      op->proj.emplace_back(tp, ap);
    }
  }
}

}  // namespace

std::vector<uint32_t> SimSchema::InvolvedTypes(uint32_t mol_pos) const {
  const SimMoleculeTypeDef& mol = molecule_types[mol_pos];
  std::set<uint32_t> types = {mol.root_pos};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [link_pos, forward] : mol.edges) {
      const SimLinkTypeDef& link = link_types[link_pos];
      uint32_t src = forward ? link.from_pos : link.to_pos;
      uint32_t dst = forward ? link.to_pos : link.from_pos;
      if (types.count(src) && !types.count(dst)) {
        types.insert(dst);
        changed = true;
      }
    }
  }
  return std::vector<uint32_t>(types.begin(), types.end());
}

SimWorkload GenerateWorkload(uint64_t seed, const GenOptions& options) {
  Random rng(seed);
  SimWorkload w;
  w.seed = seed;
  w.schema = GenerateSchema(&rng);
  // Draw the tiering knobs unconditionally so a --no_tiering run sees
  // the exact same schema and op stream (only roll==98 ops differ).
  w.tiering_enabled = options.enable_tiering;
  w.tiering_cold_age = static_cast<Timestamp>(rng.UniformRange(8, 32));
  w.tiering_segment_bytes = 1024 * (1 + rng.Uniform(4));
  w.transient_io_enabled = options.enable_transient_io;
  // Transaction knobs are likewise drawn unconditionally; a --no_txns
  // run generates the identical DML/query stream and only strips the
  // slot assignments at the end.
  const uint32_t num_slots = 2 + static_cast<uint32_t>(rng.Uniform(3));
  std::vector<char> slot_open(num_slots, 0);

  // A shadow model keeps generated ops mostly-valid (alive targets, open
  // links) without talking to a real database.
  SimModel model(&w.schema, ModelBug::kNone);
  Timestamp now = 10;

  auto gen_insert = [&](SimOp* op) {
    op->kind = SimOpKind::kInsert;
    op->type_pos =
        static_cast<uint32_t>(rng.Uniform(w.schema.atom_types.size()));
    const SimAtomTypeDef& def = w.schema.atom_types[op->type_pos];
    for (uint32_t a = 0; a < def.attrs.size(); ++a) {
      if (rng.Bernoulli(0.8)) {
        op->set.emplace_back(a, RandomValue(&rng, def.attrs[a].type));
      }
    }
    op->at = now;
    op->atom = model.InsertAtom(op->type_pos, op->set, op->at);
  };

  for (size_t i = 0; i < options.num_ops; ++i) {
    SimOp op;
    uint64_t roll = i < 6 ? 0 : rng.Uniform(100);  // seed a population first
    now += rng.UniformRange(1, 3);

    if (roll < 20) {
      gen_insert(&op);
    } else if (roll < 36) {  // update
      AtomId id = PickAlive(&rng, model);
      if (id == 0) {
        gen_insert(&op);
      } else {
        op.kind = SimOpKind::kUpdate;
        op.atom = id;
        op.type_pos = model.atoms().at(id).type_pos;
        const SimAtomTypeDef& def = w.schema.atom_types[op.type_pos];
        uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(2));
        for (uint32_t k = 0; k < n; ++k) {
          uint32_t a = static_cast<uint32_t>(rng.Uniform(def.attrs.size()));
          op.set.emplace_back(a, RandomValue(&rng, def.attrs[a].type));
        }
        op.at = now;
        model.UpdateAtom(op.type_pos, op.atom, op.set, op.at);
      }
    } else if (roll < 44) {  // delete
      AtomId id = PickAlive(&rng, model);
      if (id == 0) {
        gen_insert(&op);
      } else {
        op.kind = SimOpKind::kDelete;
        op.atom = id;
        op.type_pos = model.atoms().at(id).type_pos;
        op.at = now;
        model.DeleteAtom(op.type_pos, op.atom, op.at);
      }
    } else if (roll < 58) {  // connect
      uint32_t link_pos =
          static_cast<uint32_t>(rng.Uniform(w.schema.link_types.size()));
      const SimLinkTypeDef& link = w.schema.link_types[link_pos];
      std::vector<AtomId> froms, tos;
      for (AtomId id : model.AtomsOfType(link.from_pos)) {
        if (model.AliveNow(id)) froms.push_back(id);
      }
      for (AtomId id : model.AtomsOfType(link.to_pos)) {
        if (model.AliveNow(id)) tos.push_back(id);
      }
      bool placed = false;
      if (!froms.empty() && !tos.empty()) {
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          AtomId f = froms[rng.Uniform(froms.size())];
          AtomId t = tos[rng.Uniform(tos.size())];
          if (!model.CanConnect(link_pos, f, t)) continue;
          op.kind = SimOpKind::kConnect;
          op.link_pos = link_pos;
          op.from = f;
          op.to = t;
          op.at = now;
          model.Connect(link_pos, f, t, now);
          placed = true;
        }
      }
      if (!placed) gen_insert(&op);
    } else if (roll < 64) {  // disconnect
      uint32_t link_pos =
          static_cast<uint32_t>(rng.Uniform(w.schema.link_types.size()));
      std::vector<std::pair<AtomId, AtomId>> open = model.OpenLinks(link_pos);
      if (open.empty()) {
        gen_insert(&op);
      } else {
        auto [f, t] = open[rng.Uniform(open.size())];
        op.kind = SimOpKind::kDisconnect;
        op.link_pos = link_pos;
        op.from = f;
        op.to = t;
        op.at = now;
        model.Disconnect(link_pos, f, t, now);
      }
    } else if (roll < 67) {  // bad update (deliberate error-path probe)
      op.kind = SimOpKind::kBadUpdate;
      op.type_pos =
          static_cast<uint32_t>(rng.Uniform(w.schema.atom_types.size()));
      // Never-existed target, or (when available) a dead/wrong-typed one.
      op.atom = kDanglingBase + rng.Uniform(16);
      if (rng.Bernoulli(0.5)) {
        std::vector<AtomId> stale;
        for (const auto& [id, atom] : model.atoms()) {
          if (!model.AliveNow(id) || atom.type_pos != op.type_pos) {
            stale.push_back(id);
          }
        }
        if (!stale.empty()) op.atom = stale[rng.Uniform(stale.size())];
      }
      const SimAtomTypeDef& def = w.schema.atom_types[op.type_pos];
      op.set.emplace_back(0, RandomValue(&rng, def.attrs[0].type));
      op.at = now;
    } else if (roll < 79) {  // query
      GenerateQuery(&rng, w.schema, now, options, &op);
    } else if (roll < 85) {  // transaction control
      // All randomness is drawn before branching so the stream stays
      // aligned whether or not a slot was available.
      const bool want_begin_roll = rng.Uniform(3) == 0;
      const uint32_t pick = static_cast<uint32_t>(rng.Uniform(num_slots));
      const bool commit_roll = rng.Bernoulli(0.85);
      std::vector<uint32_t> open_slots, closed_slots;
      for (uint32_t s = 0; s < num_slots; ++s) {
        (slot_open[s] ? open_slots : closed_slots).push_back(s);
      }
      bool want_begin = want_begin_roll;
      if (want_begin && closed_slots.empty()) want_begin = false;
      if (!want_begin && open_slots.empty()) want_begin = true;
      if (want_begin) {
        uint32_t s = closed_slots[pick % closed_slots.size()];
        op.kind = SimOpKind::kTxnBegin;
        op.txn_slot = static_cast<int>(s);
        slot_open[s] = 1;
      } else {
        uint32_t s = open_slots[pick % open_slots.size()];
        op.kind = commit_roll ? SimOpKind::kTxnCommit : SimOpKind::kTxnAbort;
        op.txn_slot = static_cast<int>(s);
        slot_open[s] = 0;
      }
    } else if (roll < 89) {
      op.kind = SimOpKind::kCheckpoint;
    } else if (roll < 92) {
      op.kind = SimOpKind::kReopen;
    } else if (roll < 95) {
      if (options.enable_cuts) {
        op.kind = SimOpKind::kPowerCut;
        op.cut_after_events = static_cast<uint64_t>(rng.UniformRange(2, 60));
        op.cut_mode = rng.Bernoulli(0.5) ? CutMode::kDropUnsynced
                                         : CutMode::kKeepAllTearLast;
      } else {
        GenerateQuery(&rng, w.schema, now, options, &op);
      }
    } else if (roll < 98) {
      if (options.enable_vacuum) {
        op.kind = SimOpKind::kVacuum;
        op.at = 1 + static_cast<Timestamp>(rng.Skewed(now));
        model.VacuumBefore(op.at);
      } else {
        GenerateQuery(&rng, w.schema, now, options, &op);
      }
    } else if (roll == 98) {
      // Tiering is logically invisible, so the model stays untouched —
      // every later query and dump compare still uses the same oracle.
      op.kind = options.enable_tiering ? SimOpKind::kTierMigrate
                                       : SimOpKind::kVerify;
    } else {
      op.kind = SimOpKind::kVerify;
    }
    // Scatter DML across the open transaction slots. The shadow model
    // already applied the op optimistically (as if the transaction will
    // commit); aborts and conflicts leave ghost targets behind, which
    // the harness treats like any other invalid reference (error-path
    // probes). Bad updates stay auto-commit: they probe the immediate
    // error surface, not buffering.
    switch (op.kind) {
      case SimOpKind::kInsert:
      case SimOpKind::kUpdate:
      case SimOpKind::kDelete:
      case SimOpKind::kConnect:
      case SimOpKind::kDisconnect: {
        const bool assign = rng.Bernoulli(0.45);
        const uint32_t pick = static_cast<uint32_t>(rng.Uniform(num_slots));
        if (assign && slot_open[pick]) op.txn_slot = static_cast<int>(pick);
        break;
      }
      default: break;
    }
    w.ops.push_back(std::move(op));
  }
  if (!options.enable_txns) {
    // Ablation: identical stream minus the transactional layer. Control
    // ops degrade to cheap integrity checks; DML auto-commits.
    for (SimOp& op : w.ops) {
      op.txn_slot = -1;
      if (op.kind == SimOpKind::kTxnBegin ||
          op.kind == SimOpKind::kTxnCommit ||
          op.kind == SimOpKind::kTxnAbort) {
        op.kind = SimOpKind::kVerify;
      }
    }
  }
  return w;
}

// ---- rendering --------------------------------------------------------

std::string QueryToMql(const SimSchema& schema, const SimOp& op) {
  const SimMoleculeTypeDef& mol = schema.molecule_types[op.mol_pos];
  std::string q = "SELECT ";
  switch (op.qkind) {
    case SimQueryKind::kAllAsOf:
    case SimQueryKind::kAllWindow:
    case SimQueryKind::kAllHistory: q += "ALL"; break;
    case SimQueryKind::kCountAsOf: q += "COUNT(*)"; break;
    case SimQueryKind::kProjAsOf:
    case SimQueryKind::kProjWindow: {
      for (size_t i = 0; i < op.proj.size(); ++i) {
        const auto& [tp, ap] = op.proj[i];
        if (i) q += ", ";
        q += schema.atom_types[tp].name + "." +
             schema.atom_types[tp].attrs[ap].name;
      }
      break;
    }
  }
  q += " FROM " + mol.name;
  if (op.has_where) {
    const SimAtomTypeDef& t = schema.atom_types[op.where_type_pos];
    q += " WHERE " + t.name + "." + t.attrs[op.where_attr_pos].name;
    switch (op.where_op) {
      case BinaryOp::kEq: q += " = "; break;
      case BinaryOp::kNe: q += " != "; break;
      case BinaryOp::kLt: q += " < "; break;
      case BinaryOp::kLe: q += " <= "; break;
      case BinaryOp::kGt: q += " > "; break;
      default: q += " >= "; break;
    }
    q += std::to_string(op.where_lit);
  }
  if (op.group_by_root) q += " GROUP BY ROOT";
  switch (op.qkind) {
    case SimQueryKind::kAllAsOf:
    case SimQueryKind::kCountAsOf:
    case SimQueryKind::kProjAsOf:
      q += " VALID AT " + std::to_string(op.q_at);
      break;
    case SimQueryKind::kAllWindow:
    case SimQueryKind::kProjWindow:
      q += " VALID IN [" + std::to_string(op.q_window.begin) + ", " +
           std::to_string(op.q_window.end) + ")";
      break;
    case SimQueryKind::kAllHistory: q += " HISTORY"; break;
  }
  return q;
}

std::string OpToString(const SimSchema& schema, const SimOp& op) {
  auto type_name = [&](uint32_t pos) { return schema.atom_types[pos].name; };
  auto slot_tag = [&]() {
    return op.txn_slot >= 0 ? " [txn slot " + std::to_string(op.txn_slot) + "]"
                            : std::string();
  };
  auto render_set = [&](uint32_t type_pos) {
    std::string s;
    for (const auto& [pos, value] : op.set) {
      if (!s.empty()) s += ", ";
      s += schema.atom_types[type_pos].attrs[pos].name + "=" +
           value.ToString();
    }
    return s;
  };
  switch (op.kind) {
    case SimOpKind::kInsert:
      return "insert " + type_name(op.type_pos) + " #" +
             std::to_string(op.atom) + " {" + render_set(op.type_pos) +
             "} @" + std::to_string(op.at) + slot_tag();
    case SimOpKind::kUpdate:
    case SimOpKind::kBadUpdate:
      return std::string(op.kind == SimOpKind::kUpdate ? "update "
                                                       : "bad-update ") +
             type_name(op.type_pos) + " #" + std::to_string(op.atom) + " {" +
             render_set(op.type_pos) + "} @" + std::to_string(op.at) +
             slot_tag();
    case SimOpKind::kDelete:
      return "delete " + type_name(op.type_pos) + " #" +
             std::to_string(op.atom) + " @" + std::to_string(op.at) +
             slot_tag();
    case SimOpKind::kConnect:
    case SimOpKind::kDisconnect:
      return std::string(op.kind == SimOpKind::kConnect ? "connect "
                                                        : "disconnect ") +
             schema.link_types[op.link_pos].name + " #" +
             std::to_string(op.from) + " -> #" + std::to_string(op.to) +
             " @" + std::to_string(op.at) + slot_tag();
    case SimOpKind::kCheckpoint: return "checkpoint";
    case SimOpKind::kReopen: return "reopen";
    case SimOpKind::kPowerCut:
      return "power-cut after " + std::to_string(op.cut_after_events) +
             " events mode=" +
             (op.cut_mode == CutMode::kDropUnsynced ? "drop-unsynced"
                                                    : "keep-all-tear-last");
    case SimOpKind::kVacuum: return "vacuum before " + std::to_string(op.at);
    case SimOpKind::kTxnBegin: return "txn-begin" + slot_tag();
    case SimOpKind::kTxnCommit: return "txn-commit" + slot_tag();
    case SimOpKind::kTxnAbort: return "txn-abort" + slot_tag();
    case SimOpKind::kTierMigrate: return "tier-migrate";
    case SimOpKind::kVerify: return "verify-integrity";
    case SimOpKind::kQuery: {
      std::string q = "query: " + QueryToMql(schema, op);
      if (op.deadline_micros > 0) {
        q += " [deadline=" + std::to_string(op.deadline_micros) + "us]";
      }
      if (op.cancel) q += " [cancel]";
      if (op.transient_read_failures > 0) {
        q += " [transient-eio=" + std::to_string(op.transient_read_failures) +
             "]";
      }
      return q;
    }
  }
  return "?";
}

std::string WorkloadToString(const SimWorkload& w) {
  std::string out = "seed=" + std::to_string(w.seed) + "\nschema:\n";
  for (const SimAtomTypeDef& t : w.schema.atom_types) {
    out += "  atom " + t.name + " (";
    for (size_t i = 0; i < t.attrs.size(); ++i) {
      if (i) out += ", ";
      out += t.attrs[i].name + " " + AttrTypeName(t.attrs[i].type);
    }
    out += ")\n";
  }
  for (const SimLinkTypeDef& l : w.schema.link_types) {
    out += "  link " + l.name + " " + w.schema.atom_types[l.from_pos].name +
           " -> " + w.schema.atom_types[l.to_pos].name + "\n";
  }
  for (const SimMoleculeTypeDef& m : w.schema.molecule_types) {
    out += "  molecule " + m.name + " root " +
           w.schema.atom_types[m.root_pos].name + " edges [";
    for (size_t i = 0; i < m.edges.size(); ++i) {
      if (i) out += ", ";
      out += w.schema.link_types[m.edges[i].first].name +
             (m.edges[i].second ? "" : "^-1");
    }
    out += "]\n";
  }
  for (const SimIndexDef& ix : w.schema.indexes) {
    out += "  index " + ix.name + " on " +
           w.schema.atom_types[ix.type_pos].name + "." +
           w.schema.atom_types[ix.type_pos].attrs[ix.attr_pos].name + "\n";
  }
  out += "ops (" + std::to_string(w.ops.size()) + "):\n";
  for (size_t i = 0; i < w.ops.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + OpToString(w.schema, w.ops[i]) +
           "\n";
  }
  return out;
}

void CanonicalizeAtomIds(std::vector<SimOp>* ops) {
  std::map<AtomId, AtomId> remap;
  AtomId next = 1;
  for (const SimOp& op : *ops) {
    if (op.kind == SimOpKind::kInsert) remap[op.atom] = next++;
  }
  auto fix = [&](AtomId id) -> AtomId {
    if (id == 0 || id >= kDanglingBase) return id;  // already dangling
    auto it = remap.find(id);
    return it != remap.end() ? it->second : kDanglingBase + id;
  };
  for (SimOp& op : *ops) {
    switch (op.kind) {
      case SimOpKind::kInsert:
        op.atom = remap.at(op.atom);
        break;
      case SimOpKind::kUpdate:
      case SimOpKind::kBadUpdate:
      case SimOpKind::kDelete:
        op.atom = fix(op.atom);
        break;
      case SimOpKind::kConnect:
      case SimOpKind::kDisconnect:
        op.from = fix(op.from);
        op.to = fix(op.to);
        break;
      default: break;
    }
  }
}

}  // namespace tcob::sim
