#ifndef TCOB_SIM_MODEL_H_
#define TCOB_SIM_MODEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "query/result_set.h"
#include "sim/workload.h"

namespace tcob::sim {

/// Deliberately plantable model defects (shrinker demos, CI self-tests).
enum class ModelBug {
  kNone = 0,
  /// DeleteAtom validates but never closes the version: the first query
  /// that looks past a delete diverges from the real database.
  kIgnoreDeletes = 1,
};

/// One valid-time version of a model atom.
struct ModelVersion {
  Interval valid;
  std::vector<Value> attrs;  // schema order, NULL-padded
};

struct ModelAtom {
  uint32_t type_pos = 0;
  /// Ascending, non-overlapping; the last may be open-ended.
  std::vector<ModelVersion> versions;
};

/// The trivially-correct in-memory reference: plain sorted maps of
/// timestamped atom versions and link intervals, molecule BFS by
/// definition, query evaluation by brute-force time segmentation.
///
/// Every mutation mirrors the Database's *logical* contract exactly
/// (same validity rules, same id allocation, same vacuum predicate).
/// The harness only applies a mutation after the database acknowledged
/// it, so model and instance advance in lock-step even across power
/// cuts (see harness.cc's reconcile path).
class SimModel {
 public:
  SimModel(const SimSchema* schema, ModelBug bug)
      : schema_(schema), bug_(bug) {}

  // ---- mutations (call only after the database acked the op) ----------

  /// Allocates the next id (matching the catalog's watermark behaviour)
  /// and records version [from, forever).
  AtomId InsertAtom(uint32_t type_pos,
                    const std::vector<std::pair<uint32_t, Value>>& set,
                    Timestamp from);

  /// Records version [from, forever) under a caller-chosen id and
  /// advances the watermark past it. Explicit transactions allocate
  /// their atom ids at buffering time (and burn them on abort or
  /// conflict), so the harness mirrors the database's actual surrogate
  /// instead of predicting it.
  void InsertAtomWithId(AtomId id, uint32_t type_pos,
                        const std::vector<std::pair<uint32_t, Value>>& set,
                        Timestamp from);

  /// Would UpdateAtom succeed? False predicts an error: NotFound when
  /// the typed store holds no versions at all for the id (never
  /// inserted, fully vacuumed, or stored under another type) and
  /// InvalidArgument ("no version just before") when versions exist but
  /// none is current. The harness accepts either code — which one fires
  /// depends on physical state the model deliberately does not track.
  bool CanUpdate(uint32_t type_pos, AtomId id, Timestamp from) const;
  void UpdateAtom(uint32_t type_pos, AtomId id,
                  const std::vector<std::pair<uint32_t, Value>>& set,
                  Timestamp from);

  bool CanDelete(uint32_t type_pos, AtomId id, Timestamp from) const;
  void DeleteAtom(uint32_t type_pos, AtomId id, Timestamp from);

  /// Link ops mirror LinkStore: timestamps are strictly increasing in a
  /// sim stream, so connect is valid iff the pair has no open interval
  /// and disconnect iff it has one.
  bool CanConnect(uint32_t link_pos, AtomId from, AtomId to) const;
  void Connect(uint32_t link_pos, AtomId from, AtomId to, Timestamp at);
  bool CanDisconnect(uint32_t link_pos, AtomId from, AtomId to) const;
  void Disconnect(uint32_t link_pos, AtomId from, AtomId to, Timestamp at);

  /// Removes atom versions and link intervals with end <= cutoff (the
  /// stores' shared predicate); returns the removed atom-version count
  /// (the number Database::VacuumBefore reports).
  uint64_t VacuumBefore(Timestamp cutoff);

  /// A vacuum the database started but a power cut interrupted: it may
  /// or may not have committed. Comparisons at instants/segments ending
  /// at or before `cutoff` are masked from then on (both outcomes agree
  /// above it).
  void NoteUncertainVacuum(Timestamp cutoff);

  // ---- query oracle ---------------------------------------------------

  struct QueryExpectation {
    /// The statement must fail (empty window -> InvalidArgument; a link
    /// reaching an atom with zero stored versions -> NotFound).
    bool expect_error = false;
    /// Which error: NotFound (dangling link) vs InvalidArgument.
    bool error_is_not_found = false;
    /// As-of instant below the uncertain-vacuum horizon: execute the
    /// query but do not compare results.
    bool skip_compare = false;
    std::vector<std::string> columns;
    /// Canonical segment rows (see CanonicalizeDb for the encoding).
    std::multiset<std::string> rows;
  };
  QueryExpectation ExpectedRows(const SimOp& q) const;

  /// Maps a database ResultSet onto the model's canonical row encoding:
  /// windowed rows are split at the model's changepoints and segments
  /// ending at or before the horizon are dropped, making the comparison
  /// insensitive to state coalescing and to uncertain vacuums.
  Result<std::multiset<std::string>> CanonicalizeDb(
      const SimOp& q, const ResultSet& rs) const;

  // ---- generator / harness introspection ------------------------------

  AtomId next_id() const { return next_id_; }
  const std::map<AtomId, ModelAtom>& atoms() const { return atoms_; }
  std::vector<AtomId> AtomsOfType(uint32_t type_pos) const;
  /// Alive "now" = last version open-ended.
  bool AliveNow(AtomId id) const;
  std::vector<std::pair<AtomId, AtomId>> OpenLinks(uint32_t link_pos) const;
  Timestamp horizon() const { return horizon_; }

  /// Canonical rendering of the full logical state (every atom version,
  /// every link interval, the uncertain-vacuum horizon). The
  /// serializability check replays the committed-transaction journal in
  /// commit order into a fresh model and requires its digest to equal
  /// the lock-step model's — any drift in the harness's commit-order
  /// bookkeeping or the all-or-nothing crash reconciliation shows up as
  /// a byte difference here.
  std::string StateDigest() const;

 private:
  using LinkKey = std::tuple<uint32_t, AtomId, AtomId>;

  const ModelVersion* VersionAt(AtomId id, Timestamp t) const;
  bool AliveAt(AtomId id, Timestamp t) const;

  /// BFS fixpoint from `root` at instant `t` over the molecule's edge
  /// list; mirrors Materializer::MaterializeAsOfImpl. Dead partners are
  /// skipped (the store answers ok-but-empty), but a partner with zero
  /// versions in the target type's store is a NotFound *error* the
  /// materializer propagates — `missing` is set when a link reaches one.
  /// `uncertain` is set when a reached partner is dead and every version
  /// ends at or below the uncertain-vacuum horizon: an interrupted
  /// vacuum may have removed the atom entirely, so the database may
  /// either skip it or fail with NotFound.
  std::map<AtomId, const ModelVersion*> Materialize(uint32_t mol_pos,
                                                    AtomId root, Timestamp t,
                                                    bool* missing,
                                                    bool* uncertain) const;

  /// All interval boundaries inside (window.begin, window.end), with
  /// window.begin prepended: the instants where any molecule state can
  /// change. Segment i spans [b[i], b[i+1]) (last: window.end).
  std::vector<Timestamp> Boundaries(const Interval& window) const;

  bool EvalWhere(const SimOp& q,
                 const std::map<AtomId, const ModelVersion*>& atoms) const;
  bool WherePredicate(const SimOp& q, const ModelVersion& v) const;

  /// Appends the rows of one molecule state (segment == nullptr for
  /// as-of shape) to `out`, following EmitMolecule's row shapes and
  /// fingerprint dedup exactly.
  void EmitRows(const SimOp& q, AtomId root,
                const std::map<AtomId, const ModelVersion*>& atoms,
                const Interval* segment,
                std::multiset<std::string>* out) const;

  std::string RenderAttrs(uint32_t type_pos,
                          const std::vector<Value>& attrs) const;

  const SimSchema* schema_;
  ModelBug bug_;
  AtomId next_id_ = 1;  // catalog watermark starts at 1
  std::map<AtomId, ModelAtom> atoms_;
  std::map<LinkKey, std::vector<Interval>> links_;
  Timestamp horizon_ = 0;  // uncertain-vacuum mask
};

}  // namespace tcob::sim

#endif  // TCOB_SIM_MODEL_H_
