#include "sim/harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "common/hash.h"
#include "db/database.h"
#include "db/transaction.h"
#include "db/txn_manager.h"
#include "storage/fault_env.h"
#include "tstore/temporal_store.h"

namespace tcob::sim {

namespace {

/// One committed (or possibly-committed, for crash reconciliation)
/// logical operation with every id resolved to the instance's actual
/// database surrogates. The per-instance journal holds these in commit
/// order; the end-of-run serializability check replays the journal into
/// a fresh model.
struct ResolvedOp {
  SimOpKind kind = SimOpKind::kInsert;
  uint32_t type_pos = 0;
  uint32_t link_pos = 0;
  AtomId atom = 0;  // db id (insert: the id the allocation produced)
  AtomId from = 0;
  AtomId to = 0;
  std::vector<std::pair<uint32_t, Value>> set;
  Timestamp at = 0;
  AtomId sim_atom = 0;  // insert: the sim-stream id, for the id map
  /// kVacuum only: a cut interrupted it — replay masks instead of
  /// removing (mirrors SimModel::NoteUncertainVacuum).
  bool vacuum_uncertain = false;
};

/// An in-flight explicit transaction on one instance.
struct TxnSlot {
  bool open = false;
  std::optional<Transaction> txn;
  /// Snapshot overlay: a copy of the lock-step model at Begin() with
  /// this transaction's own buffered effects applied — exactly the
  /// state the real Transaction's eager validation sees.
  std::optional<SimModel> overlay;
  std::map<AtomId, AtomId> pending_ids;  // sim id -> db id (own inserts)
  std::vector<ResolvedOp> resolved;
  std::vector<TxnWriteKey> keys;
  /// The harness commit clock at Begin() — the conflict window's lower
  /// bound, mirroring TxnManager's snapshot sequence.
  uint64_t begin_clock = 0;
};

/// A possibly-durable commit group for crash reconciliation: `seqs` op
/// sequences (n ops + 1 commit record for a transaction, 1 for an
/// auto-committed statement). sync_wal means an acked group is durable,
/// so after a cut the recovered prefix is exactly `acked` or
/// `acked + seqs` — a commit group is all-or-nothing.
struct PendingCommit {
  std::vector<ResolvedOp> ops;
  uint64_t seqs = 0;
};

TxnWriteKey AtomKey(AtomId id) {
  TxnWriteKey k;
  k.kind = TxnWriteKey::Kind::kAtom;
  k.a = id;
  return k;
}

/// Canonical link key. The real TxnManager keys on the link *type id*;
/// the harness keys on the link position — an injective rename, so the
/// conflict predicate is identical.
TxnWriteKey LinkKey(uint32_t link_pos, AtomId from, AtomId to) {
  TxnWriteKey k;
  k.kind = TxnWriteKey::Kind::kLink;
  k.a = link_pos;
  k.b = from;
  k.c = to;
  return k;
}

TxnWriteKey KeyFor(const ResolvedOp& rop) {
  return rop.kind == SimOpKind::kConnect || rop.kind == SimOpKind::kDisconnect
             ? LinkKey(rop.link_pos, rop.from, rop.to)
             : AtomKey(rop.atom);
}

/// One database under test: a real Database over its own in-memory
/// fault-injecting environment, plus the lock-step reference model and
/// the sim-id -> db-id translation (they diverge once a power cut loses
/// an insert: the catalog re-uses the lost id, the sim stream does not).
struct Instance {
  std::string name;
  StorageStrategy strategy = StorageStrategy::kSeparated;
  size_t parallelism = 1;
  TieringOptions tiering;
  /// Mirrors SimWorkload::transient_io_enabled: the instance opens with
  /// a read-retry policy armed, so injected transient EIOs are absorbed.
  bool transient_io = false;
  std::string dir = "simdb";

  FaultInjectingIoEnv env;
  std::unique_ptr<Database> db;
  SimModel model;
  std::map<AtomId, AtomId> id_map;  // sim id -> this instance's db id

  /// Logical ops this instance acked; invariant: == db->applied_op_seq().
  uint64_t acked = 0;
  bool cut_armed = false;
  CutMode cut_mode = CutMode::kDropUnsynced;
  /// A cut interrupted a vacuum: removed-count comparisons are off from
  /// here on (the database may have vacuumed rows the model still holds).
  bool vacuum_uncertain = false;
  bool retired = false;

  uint64_t cuts_fired = 0;
  uint64_t skipped_ops = 0;
  uint64_t queries_run = 0;
  uint64_t queries_compared = 0;
  uint64_t queries_governed = 0;
  uint64_t dump_hash = 0;

  // ---- explicit transactions -----------------------------------------
  /// Declared after `db`: slots hold live Transaction objects, which
  /// must be destroyed (auto-abort) before the Database they reference.
  std::vector<TxnSlot> slots;
  /// Harness mirror of the TxnManager's commit sequence and retained
  /// write-sets: every auto-committed statement and every transaction
  /// commit bumps the clock; write-sets are retained only while a slot
  /// is open (exactly RecordLocked's rule), so first-committer-wins
  /// conflicts are predicted, not observed.
  uint64_t commit_clock = 0;
  std::vector<std::pair<uint64_t, std::vector<TxnWriteKey>>> commit_log;
  /// Committed logical ops in commit order, plus vacuum events — the
  /// serial history the final database state must equal.
  std::vector<ResolvedOp> journal;
  /// Atom-surrogate watermark prediction. Buffered inserts burn ids on
  /// abort/conflict and checkpoints persist the burn-inclusive
  /// watermark, so the prediction is an interval: normally exact
  /// (lo == hi), widened only while a cut left the last catalog save
  /// uncertain.
  AtomId next_id_lo = 1;
  AtomId next_id_hi = 1;
  /// Watermark floor persisted by the last known-successful checkpoint
  /// (checkpoint / vacuum / tier-migrate all save the catalog).
  AtomId ckpt_id_lo = 1;
  AtomId max_committed_id = 0;
  uint64_t txns_begun = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t txns_conflicted = 0;
  uint64_t serial_checks = 0;

  Instance(const SimSchema* schema, ModelBug bug) : model(schema, bug) {}
};

DatabaseOptions MakeOptions(Instance* inst) {
  DatabaseOptions opts;
  opts.strategy = inst->strategy;
  // Tiny pools force mid-run evictions and writebacks — more I/O events,
  // more distinct crash points. Parallel readers need a few more pages.
  opts.buffer_pool_pages = inst->parallelism == 1 ? 16 : 32;
  opts.sync_wal = true;  // an ack must mean durable
  opts.parallelism = inst->parallelism;
  opts.env = &inst->env;
  opts.tiering = inst->tiering;
  if (inst->transient_io) {
    // Up to 3 retries per read: the generator injects at most 2
    // consecutive transient failures, so governed reads always succeed.
    opts.io_retry.max_attempts = 4;
    opts.io_retry.base_backoff_micros = 1;  // sim time is precious
    opts.io_retry.max_backoff_micros = 16;
  }
  // Instances degrade on purpose (power cuts, poisoned WALs); automatic
  // host-filesystem dumps would fire constantly. The harness captures
  // the failing instance's trace into RunResult at divergence instead.
  opts.trace.dump_on_failure = false;
  return opts;
}

AtomId Translate(const Instance& inst, AtomId sim_id) {
  auto it = inst.id_map.find(sim_id);
  if (it != inst.id_map.end()) return it->second;
  return sim_id >= kSimDanglingBase ? sim_id : kSimDanglingBase + sim_id;
}

/// Like Translate, but a transaction's own (uncommitted) inserts resolve
/// first: inside the buffering transaction they are visible; everywhere
/// else they are not mapped, so other slots and the auto path see a
/// dangling id — matching snapshot isolation exactly.
AtomId TranslateFor(const Instance& inst, const TxnSlot* slot,
                    AtomId sim_id) {
  if (slot != nullptr) {
    auto it = slot->pending_ids.find(sim_id);
    if (it != slot->pending_ids.end()) return it->second;
  }
  return Translate(inst, sim_id);
}

/// The open slot a DML op is buffered into, or null for auto-commit.
/// A slotted op whose slot is not open (a cut or reopen discarded the
/// transaction, or a shrunk trace dropped the begin) runs auto-commit.
TxnSlot* OpenSlotFor(Instance* inst, const SimOp& op) {
  switch (op.kind) {
    case SimOpKind::kInsert:
    case SimOpKind::kUpdate:
    case SimOpKind::kDelete:
    case SimOpKind::kConnect:
    case SimOpKind::kDisconnect:
      break;
    default:
      return nullptr;  // kBadUpdate and non-DML ops never buffer
  }
  if (op.txn_slot < 0) return nullptr;
  size_t s = static_cast<size_t>(op.txn_slot);
  if (s >= inst->slots.size() || !inst->slots[s].open) return nullptr;
  return &inst->slots[s];
}

/// Resolves a DML SimOp's ids against the instance (and, if buffered,
/// the slot's own pending inserts). Insert callers overwrite `atom` with
/// the id the database actually allocated.
ResolvedOp ResolveDml(const Instance& inst, const TxnSlot* slot,
                      const SimOp& op) {
  ResolvedOp rop;
  rop.kind = op.kind;
  rop.type_pos = op.type_pos;
  rop.link_pos = op.link_pos;
  rop.set = op.set;
  rop.at = op.at;
  rop.sim_atom = op.atom;
  rop.atom = TranslateFor(inst, slot, op.atom);
  rop.from = TranslateFor(inst, slot, op.from);
  rop.to = TranslateFor(inst, slot, op.to);
  return rop;
}

/// Bumps the mirrored commit clock and retains the group's write-set —
/// but only while some transaction is open, exactly like the real
/// TxnManager's RecordLocked (entries nobody's conflict window can reach
/// are never kept, so the mirror's predictions match key for key).
void RecordCommit(Instance* inst, std::vector<TxnWriteKey> keys) {
  ++inst->commit_clock;
  bool any_open = false;
  for (const TxnSlot& s : inst->slots) any_open |= s.open;
  if (!any_open) {
    inst->commit_log.clear();
    return;
  }
  std::sort(keys.begin(), keys.end());
  inst->commit_log.emplace_back(inst->commit_clock, std::move(keys));
}

/// Mirrors one committed (or recovered-as-durable) resolved op into the
/// lock-step model and appends it to the serializability journal.
void ApplyResolved(Instance* inst, const ResolvedOp& rop) {
  switch (rop.kind) {
    case SimOpKind::kInsert:
      inst->model.InsertAtomWithId(rop.atom, rop.type_pos, rop.set, rop.at);
      inst->id_map[rop.sim_atom] = rop.atom;
      if (rop.atom > inst->max_committed_id) inst->max_committed_id = rop.atom;
      break;
    case SimOpKind::kUpdate:
    case SimOpKind::kBadUpdate:
      inst->model.UpdateAtom(rop.type_pos, rop.atom, rop.set, rop.at);
      break;
    case SimOpKind::kDelete:
      inst->model.DeleteAtom(rop.type_pos, rop.atom, rop.at);
      break;
    case SimOpKind::kConnect:
      inst->model.Connect(rop.link_pos, rop.from, rop.to, rop.at);
      break;
    case SimOpKind::kDisconnect:
      inst->model.Disconnect(rop.link_pos, rop.from, rop.to, rop.at);
      break;
    default:
      break;  // kVacuum entries are journal-only
  }
  inst->journal.push_back(rop);
}

/// Discards every open transaction slot (reopen and power-cut paths).
/// Must run while the Database is still alive: the Transaction
/// destructor's abort is pure bookkeeping (no I/O), but it unregisters
/// from the live TxnManager.
void DiscardSlots(Instance* inst) {
  for (TxnSlot& s : inst->slots) {
    if (!s.open) continue;
    s.txn.reset();
    s.overlay.reset();
    s.open = false;
    ++inst->txns_aborted;
  }
}

std::vector<std::pair<std::string, Value>> NamedAssignments(
    const SimSchema& schema, const SimOp& op) {
  const SimAtomTypeDef& def = schema.atom_types[op.type_pos];
  std::vector<std::pair<std::string, Value>> out;
  for (const auto& [pos, value] : op.set) {
    out.emplace_back(def.attrs[pos].name, value);
  }
  return out;
}

Status SetupInstance(Instance* inst, const SimSchema& schema) {
  TCOB_ASSIGN_OR_RETURN(inst->db,
                        Database::Open(inst->dir, MakeOptions(inst)));
  for (const SimAtomTypeDef& t : schema.atom_types) {
    std::vector<AttributeDef> attrs;
    for (const SimAttrDef& a : t.attrs) attrs.push_back({a.name, a.type});
    TCOB_RETURN_NOT_OK(
        inst->db->CreateAtomType(t.name, std::move(attrs)).status());
  }
  for (const SimLinkTypeDef& l : schema.link_types) {
    TCOB_RETURN_NOT_OK(inst->db
                           ->CreateLinkType(l.name,
                                            schema.atom_types[l.from_pos].name,
                                            schema.atom_types[l.to_pos].name)
                           .status());
  }
  for (const SimMoleculeTypeDef& m : schema.molecule_types) {
    std::vector<std::pair<std::string, bool>> edges;
    for (const auto& [link_pos, forward] : m.edges) {
      edges.emplace_back(schema.link_types[link_pos].name, forward);
    }
    TCOB_RETURN_NOT_OK(
        inst->db
            ->CreateMoleculeType(m.name, schema.atom_types[m.root_pos].name,
                                 edges)
            .status());
  }
  for (const SimIndexDef& ix : schema.indexes) {
    TCOB_RETURN_NOT_OK(
        inst->db
            ->CreateAttrIndex(
                ix.name, schema.atom_types[ix.type_pos].name,
                schema.atom_types[ix.type_pos].attrs[ix.attr_pos].name)
            .status());
  }
  return inst->db->Checkpoint();
}

std::string RenderRowsDiff(const std::multiset<std::string>& expected,
                           const std::multiset<std::string>& actual) {
  std::string out;
  size_t shown = 0;
  std::multiset<std::string> only_model = expected, only_db = actual;
  for (const std::string& r : actual) {
    auto it = only_model.find(r);
    if (it != only_model.end()) only_model.erase(it);
  }
  for (const std::string& r : expected) {
    auto it = only_db.find(r);
    if (it != only_db.end()) only_db.erase(it);
  }
  for (const std::string& r : only_model) {
    if (++shown > 8) { out += "\n    ..."; break; }
    out += "\n    model-only: " + r;
  }
  shown = 0;
  for (const std::string& r : only_db) {
    if (++shown > 8) { out += "\n    ..."; break; }
    out += "\n    db-only:    " + r;
  }
  return out;
}

/// Destroys the crashed database instance, revives the environment and
/// reopens, reconciling the possibly-in-flight commit group (`pending`,
/// may be null): sync_wal means every acked group is durable, so the
/// recovered prefix must be exactly `acked` or `acked + pending->seqs`
/// logical op sequences — a commit group is all-or-nothing.
std::optional<std::string> HandleCrash(Instance* inst,
                                       const PendingCommit* pending) {
  ++inst->cuts_fired;
  CutMode mode = inst->cut_mode;
  inst->cut_armed = false;
  // Open transactions die with the process: destroy them while the
  // Database is still alive (the abort is pure bookkeeping, no I/O).
  DiscardSlots(inst);
  // Destroy the victim BEFORE Revive: its destructor's I/O all fails
  // against the dead environment and writes nothing.
  inst->db.reset();
  inst->env.ClearFaults();
  inst->env.Revive();
  Result<std::unique_ptr<Database>> reopened =
      Database::Open(inst->dir, MakeOptions(inst));
  if (!reopened.ok()) {
    if (mode == CutMode::kKeepAllTearLast) {
      // A torn write can leave a detectably corrupt image; refusing to
      // open it is correct behaviour. Retire the instance.
      inst->retired = true;
      return std::nullopt;
    }
    return "reopen after kDropUnsynced cut failed: " +
           reopened.status().ToString();
  }
  inst->db = std::move(reopened.value());
  Status integrity = inst->db->VerifyIntegrity();
  if (!integrity.ok()) {
    if (mode == CutMode::kKeepAllTearLast) {
      inst->retired = true;
      inst->db.reset();
      return std::nullopt;
    }
    return "integrity check failed after kDropUnsynced cut: " +
           integrity.ToString();
  }
  uint64_t recovered = inst->db->applied_op_seq();
  if (recovered == inst->acked) {
    // The in-flight commit group (if any) did not survive. A lost
    // multi-op group was a transaction whose slot is already closed, so
    // DiscardSlots above did not count it.
    if (pending != nullptr && pending->seqs > 1) ++inst->txns_aborted;
  } else if (pending != nullptr && pending->seqs > 0 &&
             recovered == inst->acked + pending->seqs) {
    // The in-flight commit group turned out durable: all or nothing.
    std::vector<ResolvedOp> ops = pending->ops;
    if (pending->seqs == 1 && ops.size() == 1 &&
        ops[0].kind == SimOpKind::kInsert) {
      // An auto-committed insert's surrogate was only predicted (the
      // interval may be wide after an uncertain checkpoint). The insert
      // is the newest allocation the recovered catalog replayed, so the
      // watermark sits exactly one past it — read the truth back.
      AtomId actual = inst->db->catalog().CurrentAtomIdWatermark() - 1;
      if (inst->model.atoms().count(actual) != 0) {
        return "recovered insert id " + std::to_string(actual) +
               " collides with a live atom";
      }
      ops[0].atom = actual;
    }
    std::vector<TxnWriteKey> keys;
    keys.reserve(ops.size());
    for (const ResolvedOp& rop : ops) keys.push_back(KeyFor(rop));
    RecordCommit(inst, std::move(keys));
    for (const ResolvedOp& rop : ops) ApplyResolved(inst, rop);
    inst->acked = recovered;
    if (pending->seqs > 1) ++inst->txns_committed;
  } else {
    return "recovered op count " + std::to_string(recovered) +
           " outside {acked=" + std::to_string(inst->acked) +
           ", acked+pending} after cut";
  }
  // Surrogate watermark after recovery: at least the floor the last
  // known-successful catalog save persisted and past every committed
  // insert; the upper bound never grows (recovery can only lose burned
  // allocations, not invent them).
  AtomId lo = std::max(inst->ckpt_id_lo, inst->max_committed_id + 1);
  inst->next_id_lo = lo;
  if (inst->next_id_hi < lo) inst->next_id_hi = lo;
  return std::nullopt;
}

/// Routes a failed database call: if the armed power cut fired, run
/// crash recovery (with `pending` as the possibly-durable commit group),
/// otherwise report the status as a divergence.
std::optional<std::string> FailOrCrash(Instance* inst, const Status& s,
                                       const PendingCommit* pending,
                                       const char* what) {
  if (inst->env.cut_fired()) return HandleCrash(inst, pending);
  return std::string(what) + ": " + s.ToString();
}

/// Re-runs a successfully compared query through Database::Query and
/// requires the cursor to stream exactly the materialized result: same
/// columns, same rows in the same order, same message. Batch size
/// rotates (1 / 7 / everything) so both the per-row and the bulk pull
/// paths get exercised. On parallel instances — where power cuts never
/// arm, so extra nondeterministic I/O cannot perturb a cut schedule —
/// every fifth compared query additionally opens a second cursor, reads
/// one row, and Closes it mid-stream to exercise early abandonment.
std::optional<std::string> CursorCrossCheck(Instance* inst,
                                            const std::string& mql,
                                            const ResultSet& base) {
  Result<std::unique_ptr<Cursor>> opened = inst->db->Query(mql);
  if (!opened.ok()) {
    if (inst->env.cut_fired()) return HandleCrash(inst, nullptr);
    return "cursor open failed where materialized query succeeded: " +
           opened.status().ToString();
  }
  std::unique_ptr<Cursor> cursor = std::move(opened.value());
  if (cursor->columns() != base.columns) {
    return "cursor columns diverge from materialized result for `" + mql +
           "`";
  }
  size_t batch_rows = 1;
  switch (inst->queries_run % 3) {
    case 0: batch_rows = 1; break;
    case 1: batch_rows = 7; break;
    default: batch_rows = base.rows.size() + 1; break;
  }
  std::vector<std::vector<Value>> rows;
  std::vector<std::vector<Value>> batch;
  Status drain = Status::OK();
  for (;;) {
    Result<size_t> pulled = cursor->NextBatch(batch_rows, &batch);
    if (!pulled.ok()) {
      drain = pulled.status();
      break;
    }
    for (std::vector<Value>& row : batch) rows.push_back(std::move(row));
    if (pulled.value() < batch_rows) break;
  }
  std::string message = cursor->message();
  cursor->Close();
  cursor.reset();  // destroy before any crash handling
  if (!drain.ok()) {
    if (inst->env.cut_fired()) return HandleCrash(inst, nullptr);
    return "cursor drain failed where materialized query succeeded: " +
           drain.ToString();
  }
  if (rows.size() != base.rows.size()) {
    return "cursor streamed " + std::to_string(rows.size()) +
           " row(s), materialized result has " +
           std::to_string(base.rows.size()) + " for `" + mql + "`";
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] != base.rows[i]) {
      return "cursor row [" + std::to_string(i) +
             "] diverges from materialized result for `" + mql + "`";
    }
  }
  if (message != base.message) {
    return "cursor message diverges from materialized result for `" + mql +
           "`";
  }
  if (inst->parallelism != 1 && base.rows.size() >= 2 &&
      inst->queries_run % 5 == 0) {
    Result<std::unique_ptr<Cursor>> second = inst->db->Query(mql);
    if (!second.ok()) {
      return "early-close cursor open failed: " + second.status().ToString();
    }
    std::vector<Value> row;
    Result<bool> first = second.value()->Next(&row);
    if (!first.ok()) {
      return "early-close first pull failed: " + first.status().ToString();
    }
    second.value()->Close();
  }
  return std::nullopt;
}

/// Runs a governed query (deadline and/or cancel armed) through the
/// cursor surface. Whether it completes, aborts mid-stream, or aborts
/// before the first row is a wall-clock race, so the result is never
/// compared; the oracle only requires a *legal status class* — OK, the
/// governance statuses, or the statuses the query could legally return
/// ungoverned — and the standing invariants (op-seq accounting, later
/// queries) prove the abort unwound cleanly.
std::optional<std::string> ExecGovernedQuery(Instance* inst,
                                             const SimSchema& schema,
                                             const SimOp& op) {
  ++inst->queries_governed;
  std::string mql = QueryToMql(schema, op);
  auto legal = [](const Status& s) {
    return s.ok() || s.IsDeadlineExceeded() || s.IsCancelled() ||
           s.IsNotFound() || s.IsInvalidArgument();
  };
  if (op.deadline_micros > 0) {
    inst->db->set_default_query_deadline(op.deadline_micros);
  }
  Result<std::unique_ptr<Cursor>> opened = inst->db->Query(mql);
  if (op.deadline_micros > 0) inst->db->set_default_query_deadline(0);
  if (!opened.ok()) {
    if (legal(opened.status())) return std::nullopt;
    return "governed query `" + mql +
           "` open returned illegal status: " + opened.status().ToString();
  }
  std::unique_ptr<Cursor> cursor = std::move(opened.value());
  std::thread canceller;
  if (op.cancel) {
    // Cancel is documented safe from any thread, concurrently with the
    // drain below — this is the raciest legal use of the API.
    Cursor* raw = cursor.get();
    canceller = std::thread([raw]() { raw->Cancel(); });
  }
  std::vector<std::vector<Value>> batch;
  Status drain = Status::OK();
  for (;;) {
    Result<size_t> pulled = cursor->NextBatch(16, &batch);
    if (!pulled.ok()) {
      drain = pulled.status();
      break;
    }
    if (pulled.value() < 16) break;
  }
  if (canceller.joinable()) canceller.join();
  cursor->Close();
  cursor.reset();
  if (!legal(drain)) {
    return "governed query `" + mql +
           "` drain returned illegal status: " + drain.ToString();
  }
  return std::nullopt;
}

std::optional<std::string> ExecQuery(Instance* inst, const SimSchema& schema,
                                     const SimOp& op,
                                     const RunOptions& options) {
  ++inst->queries_run;
  // Transient-EIO disk mode: fail the next N reads with an injected
  // transient EIO the instance's retry policy absorbs. Deterministic (N
  // injected failures cost exactly N extra read events), so it is safe
  // on every instance, armed cuts included.
  if (op.transient_read_failures > 0 && inst->transient_io) {
    inst->env.FailTransientReads(op.transient_read_failures);
  }
  // Deadline/cancel governance runs only on parallel instances, where
  // power cuts never arm: a wall-clock abort point changes which pages
  // the buffer pool holds, hence future read-event counts, hence where
  // an event-indexed cut would fire — nondeterministic crash points on
  // p1. On p4 the perturbation is harmless (dumps compare logical
  // content, not cache state).
  if (inst->parallelism != 1 && (op.deadline_micros > 0 || op.cancel)) {
    return ExecGovernedQuery(inst, schema, op);
  }
  SimModel::QueryExpectation expect = inst->model.ExpectedRows(op);
  std::string mql = QueryToMql(schema, op);
  Result<ResultSet> r = inst->db->Execute(mql);

  if (expect.expect_error) {
    const char* want =
        expect.error_is_not_found ? "NotFound" : "InvalidArgument";
    if (r.ok()) {
      return "query `" + mql + "` expected " + want + ", got " +
             std::to_string(r.value().rows.size()) + " row(s)";
    }
    bool matched = expect.error_is_not_found ? r.status().IsNotFound()
                                             : r.status().IsInvalidArgument();
    if (matched) return std::nullopt;
    std::string what = std::string("query (expected ") + want + ")";
    return FailOrCrash(inst, r.status(), nullptr, what.c_str());
  }
  if (expect.skip_compare) {
    // Below the uncertain-vacuum horizon both the rows and even the
    // error outcome depend on whether an interrupted vacuum committed:
    // execute for coverage but accept any result. A fired cut still
    // needs crash recovery.
    if (!r.ok() && inst->env.cut_fired()) return HandleCrash(inst, nullptr);
    return std::nullopt;
  }
  if (!r.ok()) return FailOrCrash(inst, r.status(), nullptr, "query");
  const ResultSet& rs = r.value();

  if (rs.columns != expect.columns) {
    std::string got, want;
    for (const std::string& c : rs.columns) got += c + ",";
    for (const std::string& c : expect.columns) want += c + ",";
    return "query `" + mql + "` column mismatch: db [" + got + "] model [" +
           want + "]";
  }

  {
    Result<std::multiset<std::string>> canon =
        inst->model.CanonicalizeDb(op, rs);
    if (!canon.ok()) {
      return "query `" + mql +
             "` result not canonicalizable: " + canon.status().ToString();
    }
    if (canon.value() != expect.rows) {
      return "query `" + mql + "` row divergence:" +
             RenderRowsDiff(expect.rows, canon.value());
    }
    ++inst->queries_compared;
  }

  if (options.check_metrics) {
    const QueryStats& qs = inst->db->last_query_stats();
    if (qs.rows != rs.rows.size()) {
      return "trace rows counter " + std::to_string(qs.rows) +
             " != result rows " + std::to_string(rs.rows.size());
    }
    const char* want_mode =
        op.qkind == SimQueryKind::kAllHistory ? "history"
        : (op.qkind == SimQueryKind::kAllWindow ||
           op.qkind == SimQueryKind::kProjWindow)
            ? "window"
            : "as-of";
    if (qs.temporal_mode != want_mode) {
      return "trace temporal_mode `" + qs.temporal_mode + "` != `" +
             want_mode + "`";
    }
    if (qs.strategy != StorageStrategyName(inst->strategy)) {
      return "trace strategy `" + qs.strategy + "` != instance strategy";
    }
    // Span sanity: direct timers are non-negative and the execute span
    // nests inside total. (materialize_us is a derived difference and
    // may jitter slightly negative; it is not checked.)
    if (qs.parse_us < 0 || qs.plan_us < 0 || qs.execute_us < 0 ||
        qs.total_us < 0) {
      return "negative span in query trace";
    }
    if (qs.execute_us > qs.total_us + 500.0) {
      return "execute span exceeds total span beyond timer slack";
    }
  }
  // Last: the cursor re-run overwrites last_query_stats, so the metrics
  // checks above must already have read the materialized run's trace.
  if (options.check_cursors) {
    return CursorCrossCheck(inst, mql, rs);
  }
  return std::nullopt;
}

/// Buffers one DML op into an open transaction slot. The slot's overlay
/// model predicts the validation outcome (the real Transaction validates
/// eagerly against snapshot + own writes); nothing touches the lock-step
/// model or `acked` until commit. Overlay reads are real I/O, so an
/// armed cut can fire here — there is no pending commit group yet, so
/// crash recovery reconciles with pending = null.
std::optional<std::string> BufferTxnOp(Instance* inst, TxnSlot* slot,
                                       const SimSchema& schema,
                                       const SimOp& op) {
  switch (op.kind) {
    case SimOpKind::kInsert: {
      ResolvedOp rop = ResolveDml(*inst, slot, op);
      AtomId lo = inst->next_id_lo, hi = inst->next_id_hi;
      Result<AtomId> r = slot->txn->InsertAtom(
          schema.atom_types[op.type_pos].name, NamedAssignments(schema, op),
          op.at);
      // Buffering allocates the surrogate even though nothing commits
      // yet (and burns it if the transaction aborts or conflicts).
      ++inst->next_id_lo;
      ++inst->next_id_hi;
      if (!r.ok()) {
        // No store reads happen here, so this cannot be a fired cut.
        return FailOrCrash(inst, r.status(), nullptr, "txn insert");
      }
      AtomId id = r.value();
      if (id < lo || id > hi) {
        return "txn insert allocated id " + std::to_string(id) +
               " outside predicted [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "]";
      }
      if (inst->model.atoms().count(id) != 0) {
        return "txn insert allocated id " + std::to_string(id) +
               " colliding with a live atom";
      }
      inst->next_id_lo = inst->next_id_hi = id + 1;
      rop.atom = id;
      slot->pending_ids[op.atom] = id;
      slot->overlay->InsertAtomWithId(id, op.type_pos, op.set, op.at);
      slot->keys.push_back(AtomKey(id));
      slot->resolved.push_back(std::move(rop));
      break;
    }
    case SimOpKind::kUpdate: {
      ResolvedOp rop = ResolveDml(*inst, slot, op);
      bool valid = slot->overlay->CanUpdate(op.type_pos, rop.atom, op.at);
      Status s = slot->txn->UpdateAtom(schema.atom_types[op.type_pos].name,
                                       rop.atom, NamedAssignments(schema, op),
                                       op.at);
      if (valid) {
        if (!s.ok()) return FailOrCrash(inst, s, nullptr, "txn update");
        slot->overlay->UpdateAtom(op.type_pos, rop.atom, op.set, op.at);
        slot->keys.push_back(AtomKey(rop.atom));
        slot->resolved.push_back(std::move(rop));
      } else {
        if (s.ok()) {
          return "buffered update of invalid target #" +
                 std::to_string(rop.atom) + " unexpectedly succeeded";
        }
        if (!s.IsInvalidArgument() && !s.IsNotFound()) {
          return FailOrCrash(
              inst, s, nullptr,
              "invalid buffered update (expected InvalidArgument/NotFound)");
        }
      }
      break;
    }
    case SimOpKind::kDelete: {
      ResolvedOp rop = ResolveDml(*inst, slot, op);
      // Deletes validate eagerly inside a transaction too, but the
      // harness keeps the auto path's discipline: skip invalid ones.
      if (!slot->overlay->CanDelete(op.type_pos, rop.atom, op.at)) {
        ++inst->skipped_ops;
        break;
      }
      Status s = slot->txn->DeleteAtom(schema.atom_types[op.type_pos].name,
                                       rop.atom, op.at);
      if (!s.ok()) return FailOrCrash(inst, s, nullptr, "txn delete");
      slot->overlay->DeleteAtom(op.type_pos, rop.atom, op.at);
      slot->keys.push_back(AtomKey(rop.atom));
      slot->resolved.push_back(std::move(rop));
      break;
    }
    case SimOpKind::kConnect:
    case SimOpKind::kDisconnect: {
      ResolvedOp rop = ResolveDml(*inst, slot, op);
      bool connect = op.kind == SimOpKind::kConnect;
      bool valid =
          connect ? slot->overlay->CanConnect(op.link_pos, rop.from, rop.to)
                  : slot->overlay->CanDisconnect(op.link_pos, rop.from,
                                                 rop.to);
      if (!valid) {
        ++inst->skipped_ops;
        break;
      }
      const std::string& link = schema.link_types[op.link_pos].name;
      Status s = connect
                     ? slot->txn->Connect(link, rop.from, rop.to, op.at)
                     : slot->txn->Disconnect(link, rop.from, rop.to, op.at);
      if (!s.ok()) {
        return FailOrCrash(inst, s, nullptr,
                           connect ? "txn connect" : "txn disconnect");
      }
      if (connect) {
        slot->overlay->Connect(op.link_pos, rop.from, rop.to, op.at);
      } else {
        slot->overlay->Disconnect(op.link_pos, rop.from, rop.to, op.at);
      }
      slot->keys.push_back(LinkKey(op.link_pos, rop.from, rop.to));
      slot->resolved.push_back(std::move(rop));
      break;
    }
    default:
      break;  // unreachable: OpenSlotFor only routes the five DML kinds
  }
  return std::nullopt;
}

/// Replays the instance's committed journal (commit order) into a fresh
/// model and checks it two ways: the replayed state must equal the
/// lock-step model byte for byte, and a full-history query per molecule
/// type against the *database* must match the replayed model's oracle.
/// Together these prove the final database state is explained by some
/// serial execution of exactly the committed transactions — the
/// serializability acceptance check.
std::optional<std::string> SerializabilityCheck(Instance* inst,
                                                const SimSchema& schema,
                                                ModelBug bug) {
  SimModel replay(&schema, bug);
  for (const ResolvedOp& rop : inst->journal) {
    switch (rop.kind) {
      case SimOpKind::kInsert:
        replay.InsertAtomWithId(rop.atom, rop.type_pos, rop.set, rop.at);
        break;
      case SimOpKind::kUpdate:
      case SimOpKind::kBadUpdate:
        replay.UpdateAtom(rop.type_pos, rop.atom, rop.set, rop.at);
        break;
      case SimOpKind::kDelete:
        replay.DeleteAtom(rop.type_pos, rop.atom, rop.at);
        break;
      case SimOpKind::kConnect:
        replay.Connect(rop.link_pos, rop.from, rop.to, rop.at);
        break;
      case SimOpKind::kDisconnect:
        replay.Disconnect(rop.link_pos, rop.from, rop.to, rop.at);
        break;
      case SimOpKind::kVacuum:
        if (rop.vacuum_uncertain) {
          replay.NoteUncertainVacuum(rop.at);
        } else {
          replay.VacuumBefore(rop.at);
        }
        break;
      default:
        break;
    }
  }
  if (replay.StateDigest() != inst->model.StateDigest()) {
    return std::string(
        "serial replay of committed transactions diverges from the "
        "lock-step model");
  }
  for (uint32_t m = 0;
       m < static_cast<uint32_t>(schema.molecule_types.size()); ++m) {
    SimOp q;
    q.kind = SimOpKind::kQuery;
    q.qkind = SimQueryKind::kAllHistory;
    q.mol_pos = m;
    ++inst->serial_checks;
    SimModel::QueryExpectation expect = replay.ExpectedRows(q);
    std::string mql = QueryToMql(schema, q);
    Result<ResultSet> r = inst->db->Execute(mql);
    if (expect.skip_compare) {
      // An uncertain vacuum raised the horizon above the full-history
      // window's start: execute for coverage, accept any outcome.
      continue;
    }
    if (expect.expect_error) {
      bool matched = !r.ok() && (expect.error_is_not_found
                                     ? r.status().IsNotFound()
                                     : r.status().IsInvalidArgument());
      if (!matched) {
        return "serializability probe `" + mql +
               "` expected an error the database did not produce";
      }
      continue;
    }
    if (!r.ok()) {
      return "serializability probe `" + mql +
             "` failed: " + r.status().ToString();
    }
    if (r.value().columns != expect.columns) {
      return "serializability probe `" + mql + "` column mismatch";
    }
    Result<std::multiset<std::string>> canon =
        replay.CanonicalizeDb(q, r.value());
    if (!canon.ok()) {
      return "serializability probe `" + mql +
             "` result not canonicalizable: " + canon.status().ToString();
    }
    if (canon.value() != expect.rows) {
      return "serializability probe `" + mql +
             "` diverges from serial replay:" +
             RenderRowsDiff(expect.rows, canon.value());
    }
  }
  return std::nullopt;
}

std::optional<std::string> ExecOp(Instance* inst, const SimSchema& schema,
                                  const SimOp& op,
                                  const RunOptions& options) {
  if (TxnSlot* slot = OpenSlotFor(inst, op)) {
    std::optional<std::string> div = BufferTxnOp(inst, slot, schema, op);
    if (div.has_value()) return div;
    // Buffered ops advance neither `acked` nor applied_op_seq; the
    // standing invariant at the bottom still holds and still runs.
    if (inst->db != nullptr && inst->db->applied_op_seq() != inst->acked) {
      return "op-seq accounting drifted during buffering: db " +
             std::to_string(inst->db->applied_op_seq()) + " vs harness " +
             std::to_string(inst->acked);
    }
    return std::nullopt;
  }
  switch (op.kind) {
    case SimOpKind::kInsert: {
      ResolvedOp rop = ResolveDml(*inst, nullptr, op);
      rop.atom = inst->next_id_lo;  // predicted; exact when lo == hi
      PendingCommit pending;
      pending.ops.push_back(rop);
      pending.seqs = 1;
      AtomId lo = inst->next_id_lo, hi = inst->next_id_hi;
      Result<AtomId> r = inst->db->InsertAtom(
          schema.atom_types[op.type_pos].name, NamedAssignments(schema, op),
          op.at);
      // The call allocated the surrogate whether or not it survived.
      ++inst->next_id_lo;
      ++inst->next_id_hi;
      if (!r.ok()) return FailOrCrash(inst, r.status(), &pending, "insert");
      AtomId id = r.value();
      if (id < lo || id > hi) {
        return "insert allocated id " + std::to_string(id) +
               " outside predicted [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "]";
      }
      if (inst->model.atoms().count(id) != 0) {
        return "insert allocated id " + std::to_string(id) +
               " colliding with a live atom";
      }
      inst->next_id_lo = inst->next_id_hi = id + 1;
      rop.atom = id;
      RecordCommit(inst, {AtomKey(id)});
      ApplyResolved(inst, rop);
      ++inst->acked;
      break;
    }
    case SimOpKind::kUpdate:
    case SimOpKind::kBadUpdate: {
      ResolvedOp rop = ResolveDml(*inst, nullptr, op);
      bool valid = inst->model.CanUpdate(op.type_pos, rop.atom, op.at);
      Status s = inst->db->UpdateAtom(schema.atom_types[op.type_pos].name,
                                      rop.atom, NamedAssignments(schema, op),
                                      op.at);
      if (valid) {
        if (!s.ok()) {
          PendingCommit pending;
          pending.ops.push_back(rop);
          pending.seqs = 1;
          return FailOrCrash(inst, s, &pending, "update");
        }
        RecordCommit(inst, {AtomKey(rop.atom)});
        ApplyResolved(inst, rop);
        ++inst->acked;
      } else {
        if (s.ok()) {
          return "update of invalid target #" + std::to_string(rop.atom) +
                 " unexpectedly succeeded";
        }
        // NotFound when the typed store holds no versions for the id,
        // InvalidArgument when versions exist but none is current.
        if (!s.IsInvalidArgument() && !s.IsNotFound()) {
          return FailOrCrash(
              inst, s, nullptr,
              "invalid update (expected InvalidArgument or NotFound)");
        }
      }
      break;
    }
    case SimOpKind::kDelete: {
      ResolvedOp rop = ResolveDml(*inst, nullptr, op);
      // Deletes are log-then-apply (no prevalidation): issuing an
      // invalid one would poison the instance, so skip it instead.
      if (!inst->model.CanDelete(op.type_pos, rop.atom, op.at)) {
        ++inst->skipped_ops;
        break;
      }
      Status s = inst->db->DeleteAtom(schema.atom_types[op.type_pos].name,
                                      rop.atom, op.at);
      if (!s.ok()) {
        PendingCommit pending;
        pending.ops.push_back(rop);
        pending.seqs = 1;
        return FailOrCrash(inst, s, &pending, "delete");
      }
      RecordCommit(inst, {AtomKey(rop.atom)});
      ApplyResolved(inst, rop);
      ++inst->acked;
      break;
    }
    case SimOpKind::kConnect:
    case SimOpKind::kDisconnect: {
      ResolvedOp rop = ResolveDml(*inst, nullptr, op);
      bool connect = op.kind == SimOpKind::kConnect;
      bool valid =
          connect ? inst->model.CanConnect(op.link_pos, rop.from, rop.to)
                  : inst->model.CanDisconnect(op.link_pos, rop.from, rop.to);
      if (!valid) {  // log-then-apply, same reasoning as delete
        ++inst->skipped_ops;
        break;
      }
      const std::string& link = schema.link_types[op.link_pos].name;
      Status s = connect ? inst->db->Connect(link, rop.from, rop.to, op.at)
                         : inst->db->Disconnect(link, rop.from, rop.to,
                                                op.at);
      if (!s.ok()) {
        PendingCommit pending;
        pending.ops.push_back(rop);
        pending.seqs = 1;
        return FailOrCrash(inst, s, &pending,
                           connect ? "connect" : "disconnect");
      }
      RecordCommit(inst, {LinkKey(op.link_pos, rop.from, rop.to)});
      ApplyResolved(inst, rop);
      ++inst->acked;
      break;
    }
    case SimOpKind::kCheckpoint: {
      Status s = inst->db->Checkpoint();
      if (!s.ok()) return FailOrCrash(inst, s, nullptr, "checkpoint");
      // The catalog save persisted at least the current watermark floor.
      inst->ckpt_id_lo = inst->next_id_lo;
      break;
    }
    case SimOpKind::kReopen: {
      // Open transactions do not survive a restart; discard them while
      // the database is still alive.
      DiscardSlots(inst);
      inst->db.reset();
      Result<std::unique_ptr<Database>> r =
          Database::Open(inst->dir, MakeOptions(inst));
      if (!r.ok()) {
        if (inst->env.cut_fired()) return HandleCrash(inst, nullptr);
        return "clean reopen failed: " + r.status().ToString();
      }
      inst->db = std::move(r.value());
      if (inst->db->applied_op_seq() != inst->acked) {
        return "clean reopen recovered " +
               std::to_string(inst->db->applied_op_seq()) + " ops, acked " +
               std::to_string(inst->acked);
      }
      // Burned-but-uncheckpointed allocations are forgotten on restart;
      // the recovered watermark is the checkpoint floor advanced past
      // every committed insert.
      {
        AtomId lo = std::max(inst->ckpt_id_lo, inst->max_committed_id + 1);
        inst->next_id_lo = lo;
        if (inst->next_id_hi < lo) inst->next_id_hi = lo;
      }
      break;
    }
    case SimOpKind::kPowerCut: {
      if (inst->parallelism != 1) {
        // Parallel readers evict dirty pages at schedule-dependent
        // times; an event-indexed cut there would be nondeterministic.
        ++inst->skipped_ops;
        break;
      }
      inst->env.PowerCutAfterEvents(inst->env.events() + op.cut_after_events,
                                    op.cut_mode);
      inst->cut_armed = true;
      inst->cut_mode = op.cut_mode;
      break;
    }
    case SimOpKind::kVacuum: {
      Result<uint64_t> r = inst->db->VacuumBefore(op.at);
      if (!r.ok()) {
        if (inst->env.cut_fired()) {
          // The vacuum may or may not have committed; mask comparisons
          // below the cutoff from here on — in the lock-step model and
          // in the serializability journal alike.
          inst->model.NoteUncertainVacuum(op.at);
          inst->vacuum_uncertain = true;
          ResolvedOp rop;
          rop.kind = SimOpKind::kVacuum;
          rop.at = op.at;
          rop.vacuum_uncertain = true;
          inst->journal.push_back(rop);
          return HandleCrash(inst, nullptr);
        }
        return "vacuum: " + r.status().ToString();
      }
      uint64_t expected = inst->model.VacuumBefore(op.at);
      if (!inst->vacuum_uncertain && r.value() != expected) {
        return "vacuum removed " + std::to_string(r.value()) +
               " atom versions, model expected " + std::to_string(expected);
      }
      {
        ResolvedOp rop;
        rop.kind = SimOpKind::kVacuum;
        rop.at = op.at;
        inst->journal.push_back(rop);
      }
      // Vacuum checkpoints on success, persisting the watermark floor.
      inst->ckpt_id_lo = inst->next_id_lo;
      break;
    }
    case SimOpKind::kTierMigrate: {
      // Logically invisible: no model mirror, no count compare — every
      // later query, verify and dump cross-check must be unaffected. A
      // cut inside the migration recovers to the pre-migration
      // checkpoint (same discipline as vacuum, minus the uncertainty:
      // migration never removes logical content).
      Result<uint64_t> r = inst->db->TierMigrate();
      if (!r.ok()) {
        if (inst->env.cut_fired()) return HandleCrash(inst, nullptr);
        return "tier-migrate: " + r.status().ToString();
      }
      // Migration checkpoints on success, persisting the watermark floor.
      inst->ckpt_id_lo = inst->next_id_lo;
      break;
    }
    case SimOpKind::kTxnBegin: {
      size_t s = static_cast<size_t>(op.txn_slot);
      if (inst->slots.size() <= s) inst->slots.resize(s + 1);
      TxnSlot& slot = inst->slots[s];
      if (slot.open) {  // defensive: the generator never double-begins
        ++inst->skipped_ops;
        break;
      }
      slot.txn.emplace(inst->db->Begin());
      slot.overlay.emplace(inst->model);
      slot.pending_ids.clear();
      slot.resolved.clear();
      slot.keys.clear();
      slot.begin_clock = inst->commit_clock;
      slot.open = true;
      ++inst->txns_begun;
      break;
    }
    case SimOpKind::kTxnAbort: {
      TxnSlot* slot = nullptr;
      size_t s = static_cast<size_t>(op.txn_slot);
      if (s < inst->slots.size() && inst->slots[s].open) {
        slot = &inst->slots[s];
      }
      if (slot == nullptr) {  // a cut/reopen already discarded the slot
        ++inst->skipped_ops;
        break;
      }
      slot->txn->Abort();  // pure bookkeeping: ids burned, nothing logged
      slot->txn.reset();
      slot->overlay.reset();
      slot->open = false;
      ++inst->txns_aborted;
      break;
    }
    case SimOpKind::kTxnCommit: {
      TxnSlot* slot = nullptr;
      size_t s_idx = static_cast<size_t>(op.txn_slot);
      if (s_idx < inst->slots.size() && inst->slots[s_idx].open) {
        slot = &inst->slots[s_idx];
      }
      if (slot == nullptr) {  // a cut/reopen already discarded the slot
        ++inst->skipped_ops;
        break;
      }
      // First-committer-wins prediction: scan the mirrored commit log
      // newest-first for a write-set intersection inside the conflict
      // window (seq > begin_clock) — the exact TxnManager predicate.
      bool conflict = false;
      for (auto it = inst->commit_log.rbegin();
           it != inst->commit_log.rend() && !conflict; ++it) {
        if (it->first <= slot->begin_clock) break;
        for (const TxnWriteKey& k : slot->keys) {
          if (std::binary_search(it->second.begin(), it->second.end(), k)) {
            conflict = true;
            break;
          }
        }
      }
      PendingCommit pending;
      pending.ops = slot->resolved;
      // A committed transaction of n ops consumes n + 1 op sequences
      // (n ops + the commit record); an empty commit consumes none.
      pending.seqs =
          slot->resolved.empty() ? 0 : slot->resolved.size() + 1;
      Status s = slot->txn->Commit();
      slot->txn.reset();
      slot->overlay.reset();
      slot->open = false;
      if (conflict) {
        ++inst->txns_conflicted;
        if (!s.IsTxnConflict()) {
          return "txn commit: predicted first-committer-wins conflict, "
                 "got " +
                 (s.ok() ? std::string("OK") : s.ToString());
        }
        break;  // loser did no I/O; ids stay burned
      }
      if (!s.ok()) return FailOrCrash(inst, s, &pending, "txn commit");
      if (!pending.ops.empty()) {
        std::vector<TxnWriteKey> keys;
        keys.reserve(pending.ops.size());
        for (const ResolvedOp& rop : pending.ops) keys.push_back(KeyFor(rop));
        RecordCommit(inst, std::move(keys));
        for (const ResolvedOp& rop : pending.ops) ApplyResolved(inst, rop);
      }
      inst->acked += pending.seqs;
      ++inst->txns_committed;
      break;
    }
    case SimOpKind::kVerify: {
      Status s = inst->db->VerifyIntegrity();
      if (!s.ok()) return FailOrCrash(inst, s, nullptr, "verify-integrity");
      break;
    }
    case SimOpKind::kQuery:
      return ExecQuery(inst, schema, op, options);
  }
  // Cheap standing invariant: ack accounting must match the WAL's.
  if (inst->db != nullptr &&
      inst->db->applied_op_seq() != inst->acked) {
    return "op-seq accounting drifted: db " +
           std::to_string(inst->db->applied_op_seq()) + " vs harness " +
           std::to_string(inst->acked);
  }
  return std::nullopt;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToHex(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

RunResult RunWorkload(const SimWorkload& w, const RunOptions& options) {
  RunResult result;
  std::vector<std::unique_ptr<Instance>> instances;
  const StorageStrategy kStrategies[] = {StorageStrategy::kSnapshot,
                                         StorageStrategy::kIntegrated,
                                         StorageStrategy::kSeparated};
  for (StorageStrategy strategy : kStrategies) {
    for (size_t parallelism : {size_t{1}, size_t{4}}) {
      if (options.single_instance &&
          (strategy != StorageStrategy::kSeparated || parallelism != 1)) {
        continue;
      }
      auto inst = std::make_unique<Instance>(&w.schema, options.bug);
      inst->strategy = strategy;
      inst->parallelism = parallelism;
      inst->tiering.enabled = w.tiering_enabled;
      inst->tiering.cold_age = w.tiering_cold_age;
      inst->tiering.segment_target_bytes = w.tiering_segment_bytes;
      inst->transient_io = w.transient_io_enabled;
      inst->name = std::string(StorageStrategyName(strategy)) + "/p" +
                   std::to_string(parallelism);
      instances.push_back(std::move(inst));
    }
  }

  auto fail = [&](Instance* inst, size_t op_idx, std::string why) {
    result.ok = false;
    result.failing_op = op_idx;
    result.failing_instance = inst != nullptr ? inst->name : "";
    std::string at = op_idx < w.ops.size()
                         ? " at op [" + std::to_string(op_idx) + "] " +
                               OpToString(w.schema, w.ops[op_idx])
                         : "";
    result.divergence = (inst != nullptr ? inst->name + at + ": " : "") +
                        std::move(why);
    if (inst != nullptr && inst->db != nullptr) {
      result.failure_trace_json = inst->db->DumpTrace();
    }
  };

  for (auto& inst : instances) {
    Status s = SetupInstance(inst.get(), w.schema);
    if (!s.ok()) {
      fail(inst.get(), static_cast<size_t>(-1),
           "instance setup failed: " + s.ToString());
      break;
    }
  }

  if (result.ok) {
    for (size_t i = 0; i < w.ops.size() && result.ok; ++i) {
      for (auto& inst : instances) {
        if (inst->retired) continue;
        std::optional<std::string> div =
            ExecOp(inst.get(), w.schema, w.ops[i], options);
        if (div.has_value()) {
          fail(inst.get(), i, std::move(div.value()));
          break;
        }
      }
    }
  }

  // End-of-run: integrity, canonical dumps, cross-instance comparison.
  if (result.ok) {
    std::string reference_dump;
    std::string reference_name;
    for (auto& inst : instances) {
      if (inst->retired) continue;
      if (inst->env.cut_fired()) {
        // A cut fired inside an op that still returned OK (e.g. a
        // background eviction writeback): the environment is dead and
        // the instance is poisoned. Run one last crash-recovery cycle
        // before judging final state. Every completed op was acked, so
        // there is no pending op to reconcile.
        std::optional<std::string> div = HandleCrash(inst.get(), nullptr);
        if (div.has_value()) {
          fail(inst.get(), w.ops.size(), std::move(div.value()));
          break;
        }
        if (inst->retired) continue;
      } else {
        inst->env.ClearFaults();  // an armed-but-unfired cut must not
        inst->cut_armed = false;  // trigger during the final read pass
      }
      Status s = inst->db->VerifyIntegrity();
      if (!s.ok()) {
        fail(inst.get(), w.ops.size(),
             "final integrity check failed: " + s.ToString());
        break;
      }
      Result<std::string> dump = inst->db->Dump();
      if (!dump.ok()) {
        fail(inst.get(), w.ops.size(),
             "final dump failed: " + dump.status().ToString());
        break;
      }
      inst->dump_hash = Fnv1a64(dump.value().data(), dump.value().size());
      // Instances that never lost an op executed identical streams, so
      // their canonical dumps must be byte-identical across strategies
      // and parallelism.
      if (inst->cuts_fired == 0) {
        if (reference_dump.empty() && reference_name.empty()) {
          reference_dump = dump.value();
          reference_name = inst->name;
        } else if (dump.value() != reference_dump) {
          fail(inst.get(), w.ops.size(),
               "canonical dump differs from " + reference_name +
                   " (hash " + ToHex(inst->dump_hash) + " vs " +
                   ToHex(Fnv1a64(reference_dump.data(),
                                 reference_dump.size())) +
                   ")");
          break;
        }
      }
      // Serializability: the final state must be explained by replaying
      // exactly the committed transactions in commit order.
      std::optional<std::string> serial =
          SerializabilityCheck(inst.get(), w.schema, options.bug);
      if (serial.has_value()) {
        fail(inst.get(), w.ops.size(), std::move(serial.value()));
        break;
      }
    }
  }

  for (auto& inst : instances) {
    InstanceReport report;
    report.name = inst->name;
    report.strategy = StorageStrategyName(inst->strategy);
    report.parallelism = inst->parallelism;
    report.acked_dml = inst->acked;
    report.cuts_fired = inst->cuts_fired;
    report.skipped_ops = inst->skipped_ops;
    report.queries_run = inst->queries_run;
    report.queries_compared = inst->queries_compared;
    report.queries_governed = inst->queries_governed;
    report.txns_begun = inst->txns_begun;
    report.txns_committed = inst->txns_committed;
    report.txns_aborted = inst->txns_aborted;
    report.txns_conflicted = inst->txns_conflicted;
    report.serial_checks = inst->serial_checks;
    report.retired = inst->retired;
    report.dump_hash = inst->dump_hash;
    result.instances.push_back(std::move(report));
  }

  // Deterministic run summary: functions of the seed only. No wall
  // clock, no raw I/O counters (reads depend on cache luck), no
  // pointers — two runs of one seed must emit identical bytes.
  std::ostringstream json;
  json << "{\"seed\":" << w.seed << ",\"ops\":" << w.ops.size()
       << ",\"ok\":" << (result.ok ? "true" : "false") << ",\"divergence\":\""
       << EscapeJson(result.divergence) << "\",\"instances\":[";
  for (size_t i = 0; i < result.instances.size(); ++i) {
    const InstanceReport& r = result.instances[i];
    if (i) json << ",";
    json << "{\"name\":\"" << r.name << "\",\"strategy\":\"" << r.strategy
         << "\",\"parallelism\":" << r.parallelism
         << ",\"acked_dml\":" << r.acked_dml
         << ",\"cuts_fired\":" << r.cuts_fired
         << ",\"skipped_ops\":" << r.skipped_ops
         << ",\"queries_run\":" << r.queries_run
         << ",\"queries_compared\":" << r.queries_compared
         << ",\"queries_governed\":" << r.queries_governed
         << ",\"txns_begun\":" << r.txns_begun
         << ",\"txns_committed\":" << r.txns_committed
         << ",\"txns_aborted\":" << r.txns_aborted
         << ",\"txns_conflicted\":" << r.txns_conflicted
         << ",\"serial_checks\":" << r.serial_checks
         << ",\"retired\":" << (r.retired ? "true" : "false")
         << ",\"dump_hash\":\"" << ToHex(r.dump_hash) << "\"}";
  }
  json << "]}";
  result.summary_json = json.str();
  return result;
}

RunResult RunSeed(uint64_t seed, const GenOptions& gen,
                  const RunOptions& options) {
  return RunWorkload(GenerateWorkload(seed, gen), options);
}

}  // namespace tcob::sim
