#ifndef TCOB_SIM_HARNESS_H_
#define TCOB_SIM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/model.h"
#include "sim/workload.h"

namespace tcob::sim {

struct RunOptions {
  /// Defect deliberately planted in the reference model (shrinker demos
  /// and CI self-tests: the harness must catch it).
  ModelBug bug = ModelBug::kNone;
  /// Run only one instance (kSeparated, parallelism 1) instead of the
  /// full 3-strategy x {1,4}-parallelism matrix. The shrinker uses this:
  /// re-running a candidate trace needs the failure, not the matrix.
  bool single_instance = false;
  /// Cross-check QueryStats invariants after every query.
  bool check_metrics = true;
  /// Re-run every compared query through the streaming cursor API and
  /// require the drained rows to match the materialized result exactly
  /// (rotating batch sizes; occasional early Close on parallel
  /// instances, where power cuts never arm).
  bool check_cursors = true;
};

struct InstanceReport {
  std::string name;        // "snapshot/p1", "integrated/p4", ...
  std::string strategy;
  uint64_t parallelism = 1;
  uint64_t acked_dml = 0;  // successful logical ops (== applied_op_seq)
  uint64_t cuts_fired = 0;
  uint64_t skipped_ops = 0;
  uint64_t queries_run = 0;
  uint64_t queries_compared = 0;
  /// Queries that ran with a deadline or a cancel-from-a-second-thread
  /// armed. Their outcome is wall-clock racy (complete vs. abort), so
  /// they are never result-compared — the oracle only requires a legal
  /// status class. The *count* is a pure function of the seed.
  uint64_t queries_governed = 0;
  /// Explicit-transaction traffic: begins, commits that stuck, aborts
  /// (explicit ones plus slots discarded by a reopen or power cut), and
  /// commits that lost first-committer-wins validation with TxnConflict.
  /// All are predicted by the harness, so every count is a pure function
  /// of the seed (per instance: cut schedules differ across instances).
  uint64_t txns_begun = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t txns_conflicted = 0;
  /// End-of-run serializability probes: per-molecule HISTORY queries
  /// compared against a fresh model rebuilt by replaying the committed
  /// transactions in commit order.
  uint64_t serial_checks = 0;
  /// kKeepAllTearLast can leave a detectably corrupt image; such an
  /// instance is retired (correct behaviour, not a divergence).
  bool retired = false;
  /// Fnv1a64 of Database::Dump() at end of run (0 once retired).
  uint64_t dump_hash = 0;
};

struct RunResult {
  bool ok = true;
  /// First divergence, rendered for humans; empty when ok.
  std::string divergence;
  /// Index into the workload's op stream where the divergence surfaced.
  size_t failing_op = static_cast<size_t>(-1);
  std::string failing_instance;
  std::vector<InstanceReport> instances;
  /// Deterministic run summary (bench-style JSON): contains only fields
  /// that are functions of the seed, never wall-clock or I/O-schedule
  /// dependent counters — two runs of the same seed must produce
  /// byte-identical summaries.
  std::string summary_json;
  /// Flight-recorder dump (Perfetto JSON) of the failing instance,
  /// captured at the moment of divergence; empty when ok. The fuzzer
  /// writes it next to the shrunk trace artifact. Timestamps are wall
  /// clock, so unlike summary_json this is not byte-deterministic.
  std::string failure_trace_json;
};

/// Executes the workload against every database instance and its
/// lock-step reference model, comparing query results, error codes,
/// vacuum counts, id allocation, integrity and metrics sanity at every
/// step. Entirely in-memory (FaultInjectingIoEnv); no host-filesystem
/// state. Stops at the first divergence.
RunResult RunWorkload(const SimWorkload& w, const RunOptions& options);

/// GenerateWorkload + RunWorkload.
RunResult RunSeed(uint64_t seed, const GenOptions& gen,
                  const RunOptions& options);

}  // namespace tcob::sim

#endif  // TCOB_SIM_HARNESS_H_
