#ifndef TCOB_WORKLOAD_COMPANY_H_
#define TCOB_WORKLOAD_COMPANY_H_

#include <vector>

#include "common/result.h"
#include "db/database.h"

namespace tcob {

/// Parameters of the synthetic company database.
///
/// The schema is the classic complex-object example (departments with
/// employees working on projects) used throughout the MAD-model papers:
///
///   Dept(name STRING, budget INT)
///     --DeptEmp-->  Emp(name STRING, salary INT, rank INT)
///     --EmpProj-->  Proj(title STRING, budget INT)
///
/// plus the molecule type DeptMol = Dept -DeptEmp-> Emp -EmpProj-> Proj.
///
/// History generation: all atoms are inserted at `base`; then
/// `versions_per_atom - 1` update rounds run at base + k*stride, each
/// updating every employee's salary (and, with probability
/// dept_update_prob, a department's budget). Employees therefore end up
/// with exactly `versions_per_atom` versions.
struct CompanyConfig {
  size_t depts = 10;
  size_t emps_per_dept = 10;
  size_t projs_per_emp = 1;
  uint32_t versions_per_atom = 8;
  Timestamp base = 10;
  Timestamp stride = 10;
  double dept_update_prob = 0.1;
  uint64_t seed = 42;
};

/// Ids and times produced by BuildCompany, for use by queries/benches.
struct CompanyHandles {
  std::vector<AtomId> depts;
  std::vector<AtomId> emps;
  std::vector<AtomId> projs;
  MoleculeTypeId dept_mol = kInvalidTypeId;
  /// Instant at which all atoms exist in their first version.
  Timestamp first_time = 0;
  /// Instant after the last update round (the "current" world).
  Timestamp last_time = 0;
};

/// Creates schema + data in an (empty) database.
Result<CompanyHandles> BuildCompany(Database* db, const CompanyConfig& config);

}  // namespace tcob

#endif  // TCOB_WORKLOAD_COMPANY_H_
