#include "workload/company.h"

#include "common/random.h"

namespace tcob {

Result<CompanyHandles> BuildCompany(Database* db,
                                    const CompanyConfig& config) {
  Random rng(config.seed);
  CompanyHandles handles;

  TCOB_RETURN_NOT_OK(db->CreateAtomType(
                           "Dept", {{"name", AttrType::kString},
                                    {"budget", AttrType::kInt}})
                         .status());
  TCOB_RETURN_NOT_OK(db->CreateAtomType(
                           "Emp", {{"name", AttrType::kString},
                                   {"salary", AttrType::kInt},
                                   {"rank", AttrType::kInt}})
                         .status());
  TCOB_RETURN_NOT_OK(db->CreateAtomType(
                           "Proj", {{"title", AttrType::kString},
                                    {"budget", AttrType::kInt}})
                         .status());
  TCOB_RETURN_NOT_OK(db->CreateLinkType("DeptEmp", "Dept", "Emp").status());
  TCOB_RETURN_NOT_OK(db->CreateLinkType("EmpProj", "Emp", "Proj").status());
  TCOB_ASSIGN_OR_RETURN(
      handles.dept_mol,
      db->CreateMoleculeType("DeptMol", "Dept",
                             {{"DeptEmp", true}, {"EmpProj", true}}));

  const Timestamp t0 = config.base;
  for (size_t d = 0; d < config.depts; ++d) {
    TCOB_ASSIGN_OR_RETURN(
        AtomId dept,
        db->InsertAtomValues(
            "Dept",
            {Value::String("dept-" + std::to_string(d)),
             Value::Int(static_cast<int64_t>(100 + rng.Uniform(900)))},
            t0));
    handles.depts.push_back(dept);
    for (size_t e = 0; e < config.emps_per_dept; ++e) {
      TCOB_ASSIGN_OR_RETURN(
          AtomId emp,
          db->InsertAtomValues(
              "Emp",
              {Value::String("emp-" + std::to_string(d) + "-" +
                             std::to_string(e)),
               Value::Int(static_cast<int64_t>(1000 + rng.Uniform(4000))),
               Value::Int(static_cast<int64_t>(1 + rng.Uniform(5)))},
              t0));
      handles.emps.push_back(emp);
      TCOB_RETURN_NOT_OK(db->Connect("DeptEmp", dept, emp, t0));
      for (size_t p = 0; p < config.projs_per_emp; ++p) {
        TCOB_ASSIGN_OR_RETURN(
            AtomId proj,
            db->InsertAtomValues(
                "Proj",
                {Value::String("proj-" + std::to_string(handles.projs.size())),
                 Value::Int(static_cast<int64_t>(10 + rng.Uniform(90)))},
                t0));
        handles.projs.push_back(proj);
        TCOB_RETURN_NOT_OK(db->Connect("EmpProj", emp, proj, t0));
      }
    }
  }
  handles.first_time = t0;

  // Update rounds: each gives every employee a new salary version.
  Timestamp t = t0;
  for (uint32_t round = 1; round < config.versions_per_atom; ++round) {
    t = t0 + static_cast<Timestamp>(round) * config.stride;
    for (AtomId emp : handles.emps) {
      TCOB_RETURN_NOT_OK(db->UpdateAtomValues(
          "Emp", emp,
          {Value::String("emp-upd"),
           Value::Int(static_cast<int64_t>(1000 + rng.Uniform(4000))),
           Value::Int(static_cast<int64_t>(1 + rng.Uniform(5)))},
          t));
    }
    for (AtomId dept : handles.depts) {
      if (rng.Bernoulli(config.dept_update_prob)) {
        TCOB_RETURN_NOT_OK(db->UpdateAtomValues(
            "Dept", dept,
            {Value::String("dept-upd"),
             Value::Int(static_cast<int64_t>(100 + rng.Uniform(900)))},
            t));
      }
    }
  }
  handles.last_time = t + 1;
  db->SetNow(handles.last_time);
  return handles;
}

}  // namespace tcob
