#ifndef TCOB_WORKLOAD_BENCH_UTIL_H_
#define TCOB_WORKLOAD_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace tcob {

/// Monotonic wall-clock stopwatch for benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Aborts the benchmark with a readable message on an unexpected error.
/// Benchmarks intentionally crash on setup failure rather than reporting
/// skewed numbers.
inline void BenchCheck(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
            status.ToString().c_str());
    abort();
  }
}

}  // namespace tcob

#endif  // TCOB_WORKLOAD_BENCH_UTIL_H_
