#ifndef TCOB_QUERY_AST_H_
#define TCOB_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "record/value.h"
#include "time/interval.h"

namespace tcob {

/// Reference to an attribute of an atom type: "Emp.salary".
struct AttrRef {
  std::string type_name;
  std::string attr_name;

  std::string ToString() const { return type_name + "." + attr_name; }
};

// ---- expressions ----

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  // Interval predicates (Allen-style).
  kOverlaps,
  kContains,
  kBefore,
  kMeets,
  kDuring,
};

enum class UnaryOp { kNot };

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A scalar literal in the query text.
struct LiteralExpr {
  Value value = Value::Null(AttrType::kString);
};

/// An interval literal "[a, b)"; NOW and open ends handled at parse time.
struct IntervalExpr {
  Interval interval;
  bool end_is_now = false;    // "[a, NOW)"
  bool begin_is_now = false;  // "[NOW, b)"
};

/// Reference to an attribute of some atom type in the molecule.
struct AttrRefExpr {
  AttrRef ref;
};

/// VALID(TypeName): the validity interval of the bound atom version.
struct ValidOfExpr {
  std::string type_name;
};

/// BEGIN(x) / END(x) of an interval expression.
struct BoundaryExpr {
  bool is_begin = true;
  ExprPtr operand;
};

/// NOW: the database clock, resolved at evaluation time.
struct NowExpr {};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

/// The expression node: a tagged union over the node kinds.
struct Expr {
  std::variant<LiteralExpr, IntervalExpr, AttrRefExpr, ValidOfExpr,
               BoundaryExpr, BinaryExpr, UnaryExpr, NowExpr>
      node;
};

// ---- statements ----

/// How a SELECT binds time.
enum class TemporalMode {
  kAsOf,     // VALID AT <ts> (default: VALID AT NOW)
  kWindow,   // VALID IN [a, b): states overlapping the window
  kHistory,  // HISTORY: full evolution over the whole time axis
};

/// Aggregate functions over the projected binding rows.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One aggregate in a SELECT list: COUNT(*) or FN(Type.attr).
struct AggSpec {
  AggFn fn = AggFn::kCount;
  bool star = false;  // COUNT(*)
  AttrRef ref;        // meaningful unless star

  std::string ToString() const {
    return std::string(AggFnName(fn)) + "(" +
           (star ? "*" : ref.ToString()) + ")";
  }
};

struct SelectStmt {
  bool select_all = false;
  std::vector<AttrRef> projection;
  /// Ad-hoc molecule definition: "FROM <Root> VIA <link> [BACKWARD],...".
  /// When inline_root is non-empty, molecule_type is unused and the
  /// executor materializes against this unregistered definition — the
  /// model's "dynamically defined complex objects" in their purest form.
  std::string inline_root;
  std::vector<std::pair<std::string, bool>> inline_edges;
  /// Non-empty == aggregate query (select_all/projection must be empty).
  /// Aggregates fold over the rows the equivalent projection query would
  /// produce: one row per qualifying binding (per state, for window and
  /// history modes). COUNT(*) therefore counts qualifying molecules (or
  /// molecule states).
  std::vector<AggSpec> aggregates;
  /// GROUP BY ROOT: fold the aggregates per molecule (one result row per
  /// root) instead of across the whole result. Requires aggregates.
  bool group_by_root = false;
  std::string molecule_type;
  ExprPtr where;  // may be null

  /// ORDER BY: sort the result rows by a projected column ("Type.attr"
  /// spelling) or by ROOT. Empty == storage order (unspecified).
  std::string order_by;  // "ROOT" or "Type.attr"
  bool order_desc = false;

  TemporalMode mode = TemporalMode::kAsOf;
  bool at_now = true;       // kAsOf: VALID AT NOW
  Timestamp at = 0;         // kAsOf with explicit instant
  Interval window;          // kWindow
  bool window_end_now = false;
};

/// Deep copies for the move-only statement (ExprPtr makes SelectStmt
/// non-copyable); used when a cursor must own the statement it runs.
ExprPtr CloneExpr(const Expr* expr);
SelectStmt CloneSelect(const SelectStmt& stmt);

struct CreateAtomTypeStmt {
  std::string name;
  std::vector<std::pair<std::string, AttrType>> attributes;
};

struct CreateLinkStmt {
  std::string name;
  std::string from_type;
  std::string to_type;
};

struct CreateMoleculeTypeStmt {
  std::string name;
  std::string root_type;
  std::vector<std::pair<std::string, bool>> edges;  // (link name, forward)
};

/// A DML valid-time anchor: explicit chronon or NOW.
struct ValidFrom {
  bool is_now = true;
  Timestamp at = 0;
};

struct InsertStmt {
  std::string type_name;
  std::vector<std::pair<std::string, Value>> assignments;
  ValidFrom from;
};

struct UpdateStmt {
  std::string type_name;
  AtomId atom_id = kInvalidAtomId;
  std::vector<std::pair<std::string, Value>> assignments;
  ValidFrom from;
};

struct DeleteStmt {
  std::string type_name;
  AtomId atom_id = kInvalidAtomId;
  ValidFrom from;
};

struct ConnectStmt {
  std::string link_name;
  AtomId from_id = kInvalidAtomId;
  AtomId to_id = kInvalidAtomId;
  ValidFrom from;
};

struct DisconnectStmt {
  std::string link_name;
  AtomId from_id = kInvalidAtomId;
  AtomId to_id = kInvalidAtomId;
  ValidFrom from;
};

struct CreateIndexStmt {
  std::string name;
  std::string type_name;
  std::string attr_name;
};

/// EXPLAIN SELECT ...: reports the chosen access path without executing.
/// EXPLAIN ANALYZE SELECT ...: executes the query and reports the full
/// trace (per-operator timings, store/cache/pool work) instead of rows.
struct ExplainStmt {
  SelectStmt select;
  bool analyze = false;
};

struct ShowCatalogStmt {};

/// SHOW STATS: storage and buffer-pool statistics.
struct ShowStatsStmt {};

/// VACUUM BEFORE <t>: purge all history ending at or before t.
struct VacuumStmt {
  Timestamp before = 0;
};

/// BEGIN; — opens the session transaction (snapshot isolation). DML
/// statements buffer into it and SELECTs pin its snapshot until
/// COMMIT; or ABORT;.
struct BeginStmt {};

/// COMMIT; — commits the session transaction (may fail with
/// TxnConflict under first-committer-wins validation).
struct CommitStmt {};

/// ABORT; — discards the session transaction's buffered operations.
struct AbortStmt {};

using Statement =
    std::variant<SelectStmt, CreateAtomTypeStmt, CreateLinkStmt,
                 CreateMoleculeTypeStmt, CreateIndexStmt, InsertStmt,
                 UpdateStmt, DeleteStmt, ConnectStmt, DisconnectStmt,
                 ExplainStmt, ShowCatalogStmt, ShowStatsStmt, VacuumStmt,
                 BeginStmt, CommitStmt, AbortStmt>;

}  // namespace tcob

#endif  // TCOB_QUERY_AST_H_
