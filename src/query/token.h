#ifndef TCOB_QUERY_TOKEN_H_
#define TCOB_QUERY_TOKEN_H_

#include <cstdint>
#include <string>

namespace tcob {

enum class TokenType {
  // literals / identifiers
  kIdent,
  kInt,
  kFloat,
  kString,
  // punctuation
  kLParen,
  kRParen,
  kLBracket,
  kComma,
  kDot,
  kSemicolon,
  // operators
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // keywords (uppercased identifiers)
  kSelect,
  kAll,
  kFrom,
  kWhere,
  kValid,
  kAt,
  kIn,
  kHistory,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNow,
  kNull,
  kOverlaps,
  kContains,
  kBefore,
  kMeets,
  kDuring,
  kBegin,
  kEnd,
  kCreate,
  kAtomType,
  kLink,
  kMoleculeType,
  kRoot,
  kEdges,
  kForward,
  kBackward,
  kTo,
  kInsert,
  kAtom,
  kUpdate,
  kDelete,
  kConnect,
  kDisconnect,
  kSet,
  kShow,
  kCatalog,
  kIndex,
  kOn,
  kExplain,
  kAnalyze,
  kVacuum,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kStar,
  kStats,
  kGroup,
  kBy,
  kVia,
  kOrder,
  kDesc,
  kAsc,
  kCommit,
  kAbort,
  // end of input
  kEof,
};

const char* TokenTypeName(TokenType t);

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // identifier spelling / string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;    // byte offset in the query text

  bool Is(TokenType t) const { return type == t; }
};

}  // namespace tcob

#endif  // TCOB_QUERY_TOKEN_H_
