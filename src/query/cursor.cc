#include "query/cursor.h"

#include <optional>
#include <utility>

namespace tcob {

Result<size_t> Cursor::NextBatch(size_t max_rows,
                                 std::vector<std::vector<Value>>* rows) {
  rows->clear();
  std::vector<Value> row;
  while (rows->size() < max_rows) {
    TCOB_ASSIGN_OR_RETURN(bool more, Next(&row));
    if (!more) break;
    rows->push_back(std::move(row));
  }
  return rows->size();
}

Result<bool> MaterializedCursor::Next(std::vector<Value>* row) {
  if (next_ >= result_.rows.size()) return false;
  *row = std::move(result_.rows[next_++]);
  return true;
}

void MaterializedCursor::Close() {
  result_.rows.clear();
  next_ = 0;
}

namespace {

/// Rough heap footprint of a batch of rows, for budget accounting. Like
/// the version-cache estimate, string payloads are ignored: tracking the
/// buffered volume is what matters, not malloc-exact bytes.
uint64_t EstimateBatchBytes(const std::vector<std::vector<Value>>& rows) {
  uint64_t bytes = 0;
  for (const std::vector<Value>& row : rows) {
    bytes += 32 + row.size() * sizeof(Value);
  }
  return bytes;
}

}  // namespace

/// Batches streamed rows into queue items weighted by their row count,
/// so the queue's capacity (and peak) is counted in rows.
class StreamingCursor::QueueSink : public RowSink {
 public:
  QueueSink(BoundedQueue<QueueItem>* queue, size_t batch_rows,
            BudgetLease* lease)
      : queue_(queue),
        batch_rows_(batch_rows == 0 ? 1 : batch_rows),
        lease_(lease) {}

  Result<bool> Push(std::vector<Value> row) override {
    batch_.push_back(std::move(row));
    if (batch_.size() < batch_rows_) return true;
    return Flush();
  }

  /// Hands the partial batch to the queue; false once the consumer left.
  bool Flush() {
    if (batch_.empty()) return true;
    QueueItem item;
    item.bytes = EstimateBatchBytes(batch_);
    if (lease_ != nullptr) item.charged = lease_->Charge(item.bytes);
    const size_t weight = batch_.size();
    const uint64_t bytes = item.bytes;
    const bool charged = item.charged;
    item.rows = std::move(batch_);
    batch_ = RowBatch();
    bool accepted = queue_->Push(std::move(item), weight);
    if (!accepted && lease_ != nullptr) {
      // Consumer left: the queue dropped the item, undo its charge.
      lease_->Release(charged ? bytes : 0, charged ? 0 : bytes);
    }
    return accepted;
  }

 private:
  BoundedQueue<QueueItem>* queue_;
  const size_t batch_rows_;
  BudgetLease* lease_;
  RowBatch batch_;
};

StreamingCursor::StreamingCursor(std::vector<std::string> columns,
                                 std::string message, ProducerFn producer,
                                 FinalizeFn finalize,
                                 std::function<void()> on_first_row,
                                 Options options)
    : columns_(std::move(columns)),
      message_(std::move(message)),
      options_(options),
      queue_(options_.queue_capacity_rows, /*producers=*/1),
      finalize_(std::move(finalize)),
      on_first_row_(std::move(on_first_row)) {
  producer_thread_ = std::thread([this, producer = std::move(producer)] {
    QueueSink sink(&queue_, options_.batch_rows, options_.lease);
    Status status = producer(&sink);
    if (status.ok()) sink.Flush();  // the tail partial batch
    queue_.CloseProducer(std::move(status));
  });
}

StreamingCursor::StreamingCursor(std::vector<std::string> columns,
                                 std::string message, ProducerFn producer,
                                 FinalizeFn finalize,
                                 std::function<void()> on_first_row)
    : StreamingCursor(std::move(columns), std::move(message),
                      std::move(producer), std::move(finalize),
                      std::move(on_first_row), Options()) {}

StreamingCursor::~StreamingCursor() { Close(); }

Result<bool> StreamingCursor::Next(std::vector<Value>* row) {
  if (cancelled_.load(std::memory_order_acquire) && !end_) {
    // Cancel() already closed the consumer side, so the producer exits
    // at its next push or context check; join it and report.
    end_ = true;
    ReleaseBuffer();
    Finish();
    if (final_status_.ok()) {
      final_status_ = Status::Cancelled("query cancelled");
    }
    return final_status_;
  }
  if (end_) {
    if (!final_status_.ok()) return final_status_;
    return false;
  }
  if (buffer_next_ >= buffer_.size()) {
    buffer_.clear();
    ReleaseBuffer();
    buffer_next_ = 0;
    std::optional<QueueItem> batch = queue_.Pop();
    if (!batch.has_value()) {
      // End of stream: the producer has closed — join it and settle the
      // final status before reporting.
      end_ = true;
      Finish();
      if (!final_status_.ok()) return final_status_;
      return false;
    }
    buffer_ = std::move(batch->rows);
    buffer_bytes_ = batch->bytes;
    buffer_charged_ = batch->charged;
  }
  *row = std::move(buffer_[buffer_next_++]);
  ++rows_delivered_;
  if (!saw_first_row_) {
    saw_first_row_ = true;
    if (on_first_row_) on_first_row_();
  }
  return true;
}

void StreamingCursor::Close() {
  if (closed_) return;
  closed_ = true;
  if (!end_) {
    // Abandoning mid-stream: unblock the producer, whose next Push
    // returns false and stops the query cleanly.
    queue_.CloseConsumer();
    end_ = true;
  }
  ReleaseBuffer();
  Finish();
}

void StreamingCursor::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  if (options_.context != nullptr) options_.context->Cancel();
  // Unblocks a producer stalled on backpressure; its next Push returns
  // false. The consumer is woken by the producer's CloseProducer.
  queue_.CloseConsumer();
}

void StreamingCursor::Finish() {
  if (producer_thread_.joinable()) producer_thread_.join();
  if (finalized_) return;
  finalized_ = true;
  final_status_ = queue_.producer_status();
  StreamingCursorStats stats;
  stats.rows_streamed = rows_delivered_;
  stats.peak_buffered_rows = queue_.peak_weight();
  if (finalize_) finalize_(final_status_, stats);
}

void StreamingCursor::ReleaseBuffer() {
  // Batches still queued (abandon path) are not individually released —
  // the lease's destructor returns everything it still holds.
  if (buffer_bytes_ == 0) return;
  if (options_.lease != nullptr) {
    options_.lease->Release(buffer_charged_ ? buffer_bytes_ : 0,
                            buffer_charged_ ? 0 : buffer_bytes_);
  }
  buffer_bytes_ = 0;
  buffer_charged_ = false;
}

}  // namespace tcob
