#ifndef TCOB_QUERY_PARSER_H_
#define TCOB_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "query/token.h"

namespace tcob {

/// Recursive-descent parser for MQL (the temporal molecule query
/// language). One call parses one statement; trailing semicolons are
/// accepted.
class Parser {
 public:
  /// Parses a single statement.
  static Result<Statement> Parse(const std::string& input);

  /// Parses a ';'-separated script into a statement list.
  static Result<std::vector<Statement>> ParseScript(const std::string& input);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenType t) {
    if (Peek().Is(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* context);
  Status ErrorHere(const std::string& msg) const;

  Result<Statement> ParseStatement();
  Result<Statement> ParseSelect();
  Result<Statement> ParseCreate();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseConnect(bool connect);
  Result<ValidFrom> ParseValidFrom();
  Result<std::vector<std::pair<std::string, Value>>> ParseAssignments();
  Result<Value> ParseLiteralValue();
  Result<std::pair<Timestamp, bool>> ParseInstant();  // (value, is_now)

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParsePrimary();
  Result<Interval> ParseIntervalLiteral(bool* begin_now, bool* end_now);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Current expression-nesting depth. Parenthesised expressions and NOT
  /// chains recurse one stack frame per level; the cap turns adversarial
  /// inputs (fuzzers, deep machine-generated WHERE clauses) into a parse
  /// error instead of stack exhaustion.
  size_t expr_depth_ = 0;
  static constexpr size_t kMaxExprDepth = 200;
};

}  // namespace tcob

#endif  // TCOB_QUERY_PARSER_H_
