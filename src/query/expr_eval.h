#ifndef TCOB_QUERY_EXPR_EVAL_H_
#define TCOB_QUERY_EXPR_EVAL_H_

#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.h"
#include "mad/molecule.h"
#include "query/ast.h"

namespace tcob {

/// A runtime expression value: a scalar or an interval.
using EvalValue = std::variant<Value, Interval>;

/// One way of binding the atom-type names referenced by an expression to
/// concrete atoms of a molecule.
struct Binding {
  std::map<std::string, const AtomVersion*> atoms;
};

/// Evaluates MQL expressions against molecule bindings.
///
/// Quantification follows the molecule query language's existential
/// reading: a molecule satisfies a predicate iff *some* assignment of its
/// atoms to the referenced type names satisfies it. EnumerateBindings
/// produces those assignments (the cartesian product over the referenced
/// types, capped to guard against degenerate molecules).
class ExprEvaluator {
 public:
  ExprEvaluator(const Catalog* catalog, Timestamp now)
      : catalog_(catalog), now_(now) {}

  /// Type names referenced by attr refs / VALID() in `expr`.
  static void CollectTypes(const Expr& expr, std::set<std::string>* out);

  /// All bindings of `type_names` to atoms of `molecule`. Empty result
  /// means some referenced type has no atom in this molecule.
  Result<std::vector<Binding>> EnumerateBindings(
      const Molecule& molecule,
      const std::set<std::string>& type_names) const;

  /// Full evaluation under one binding.
  Result<EvalValue> Eval(const Expr& expr, const Binding& binding) const;

  /// Boolean evaluation (TypeError if the expression is not boolean).
  Result<bool> EvalBool(const Expr& expr, const Binding& binding) const;

  /// Existential satisfaction: does any binding make `expr` true?
  Result<bool> Satisfies(const Expr& expr, const Molecule& molecule) const;

  Timestamp now() const { return now_; }

 private:
  Result<EvalValue> EvalBinary(const BinaryExpr& expr,
                               const Binding& binding) const;

  const Catalog* catalog_;
  Timestamp now_;
};

}  // namespace tcob

#endif  // TCOB_QUERY_EXPR_EVAL_H_
