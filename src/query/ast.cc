#include "query/ast.h"

#include <type_traits>
#include <utility>

namespace tcob {

ExprPtr CloneExpr(const Expr* expr) {
  if (expr == nullptr) return nullptr;
  auto out = std::make_unique<Expr>();
  out->node = std::visit(
      [](const auto& node) -> decltype(Expr::node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BoundaryExpr>) {
          BoundaryExpr copy;
          copy.is_begin = node.is_begin;
          copy.operand = CloneExpr(node.operand.get());
          return copy;
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          BinaryExpr copy;
          copy.op = node.op;
          copy.left = CloneExpr(node.left.get());
          copy.right = CloneExpr(node.right.get());
          return copy;
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          UnaryExpr copy;
          copy.op = node.op;
          copy.operand = CloneExpr(node.operand.get());
          return copy;
        } else {
          return node;  // leaf nodes are plain values
        }
      },
      expr->node);
  return out;
}

SelectStmt CloneSelect(const SelectStmt& stmt) {
  SelectStmt out;
  out.select_all = stmt.select_all;
  out.projection = stmt.projection;
  out.inline_root = stmt.inline_root;
  out.inline_edges = stmt.inline_edges;
  out.aggregates = stmt.aggregates;
  out.group_by_root = stmt.group_by_root;
  out.molecule_type = stmt.molecule_type;
  out.where = CloneExpr(stmt.where.get());
  out.order_by = stmt.order_by;
  out.order_desc = stmt.order_desc;
  out.mode = stmt.mode;
  out.at_now = stmt.at_now;
  out.at = stmt.at;
  out.window = stmt.window;
  out.window_end_now = stmt.window_end_now;
  return out;
}

}  // namespace tcob
