#include "query/expr_eval.h"

#include <algorithm>

namespace tcob {

namespace {

constexpr size_t kMaxBindings = 100000;

bool IsInterval(const EvalValue& v) {
  return std::holds_alternative<Interval>(v);
}

Result<Interval> AsInterval(const EvalValue& v) {
  if (IsInterval(v)) return std::get<Interval>(v);
  const Value& value = std::get<Value>(v);
  if (value.type() == AttrType::kTimestamp && !value.is_null()) {
    return Interval::At(value.AsTime());
  }
  if (value.type() == AttrType::kInt && !value.is_null()) {
    return Interval::At(value.AsInt());
  }
  return Status::TypeError("expected an interval value");
}

}  // namespace

void ExprEvaluator::CollectTypes(const Expr& expr,
                                 std::set<std::string>* out) {
  std::visit(
      [out](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AttrRefExpr>) {
          out->insert(node.ref.type_name);
        } else if constexpr (std::is_same_v<T, ValidOfExpr>) {
          out->insert(node.type_name);
        } else if constexpr (std::is_same_v<T, BoundaryExpr>) {
          CollectTypes(*node.operand, out);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          CollectTypes(*node.left, out);
          CollectTypes(*node.right, out);
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          CollectTypes(*node.operand, out);
        }
      },
      expr.node);
}

Result<std::vector<Binding>> ExprEvaluator::EnumerateBindings(
    const Molecule& molecule, const std::set<std::string>& type_names) const {
  // Resolve each referenced type name and collect its atoms.
  std::vector<std::string> names(type_names.begin(), type_names.end());
  std::vector<std::vector<const AtomVersion*>> domains;
  for (const std::string& name : names) {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                          catalog_->GetAtomTypeByName(name));
    std::vector<const AtomVersion*> atoms;
    for (const auto& [id, version] : molecule.atoms) {
      (void)id;
      if (version.type == def->id) atoms.push_back(&version);
    }
    if (atoms.empty()) return std::vector<Binding>{};  // unsatisfiable
    domains.push_back(std::move(atoms));
  }
  // Cartesian product.
  std::vector<Binding> bindings;
  bindings.emplace_back();
  for (size_t d = 0; d < domains.size(); ++d) {
    std::vector<Binding> next;
    next.reserve(bindings.size() * domains[d].size());
    for (const Binding& partial : bindings) {
      for (const AtomVersion* atom : domains[d]) {
        if (next.size() >= kMaxBindings) {
          return Status::ResourceExhausted(
              "predicate binding space too large");
        }
        Binding b = partial;
        b.atoms[names[d]] = atom;
        next.push_back(std::move(b));
      }
    }
    bindings = std::move(next);
  }
  return bindings;
}

Result<EvalValue> ExprEvaluator::Eval(const Expr& expr,
                                      const Binding& binding) const {
  using R = Result<EvalValue>;
  return std::visit(
      [&](const auto& node) -> R {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, LiteralExpr>) {
          return EvalValue(node.value);
        } else if constexpr (std::is_same_v<T, IntervalExpr>) {
          Interval iv = node.interval;
          if (node.begin_is_now) iv.begin = now_;
          if (node.end_is_now) iv.end = now_;
          return EvalValue(iv);
        } else if constexpr (std::is_same_v<T, NowExpr>) {
          return EvalValue(Value::Time(now_));
        } else if constexpr (std::is_same_v<T, AttrRefExpr>) {
          auto it = binding.atoms.find(node.ref.type_name);
          if (it == binding.atoms.end()) {
            return Status::Internal("unbound type " + node.ref.type_name);
          }
          TCOB_ASSIGN_OR_RETURN(
              const AtomTypeDef* def,
              catalog_->GetAtomTypeByName(node.ref.type_name));
          int idx = def->AttrIndex(node.ref.attr_name);
          if (idx < 0) {
            return Status::InvalidArgument("unknown attribute " +
                                           node.ref.ToString());
          }
          return EvalValue(it->second->attrs[idx]);
        } else if constexpr (std::is_same_v<T, ValidOfExpr>) {
          auto it = binding.atoms.find(node.type_name);
          if (it == binding.atoms.end()) {
            return Status::Internal("unbound type " + node.type_name);
          }
          return EvalValue(it->second->valid);
        } else if constexpr (std::is_same_v<T, BoundaryExpr>) {
          TCOB_ASSIGN_OR_RETURN(EvalValue operand,
                                Eval(*node.operand, binding));
          TCOB_ASSIGN_OR_RETURN(Interval iv, AsInterval(operand));
          return EvalValue(
              Value::Time(node.is_begin ? iv.begin : iv.end));
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          TCOB_ASSIGN_OR_RETURN(bool b, EvalBool(*node.operand, binding));
          return EvalValue(Value::Bool(!b));
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          return EvalBinary(node, binding);
        } else {
          return Status::Internal("unhandled expression node");
        }
      },
      expr.node);
}

Result<EvalValue> ExprEvaluator::EvalBinary(const BinaryExpr& expr,
                                            const Binding& binding) const {
  // Short-circuit logical operators.
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    TCOB_ASSIGN_OR_RETURN(bool left, EvalBool(*expr.left, binding));
    if (expr.op == BinaryOp::kAnd && !left) {
      return EvalValue(Value::Bool(false));
    }
    if (expr.op == BinaryOp::kOr && left) {
      return EvalValue(Value::Bool(true));
    }
    TCOB_ASSIGN_OR_RETURN(bool right, EvalBool(*expr.right, binding));
    return EvalValue(Value::Bool(right));
  }

  TCOB_ASSIGN_OR_RETURN(EvalValue left, Eval(*expr.left, binding));
  TCOB_ASSIGN_OR_RETURN(EvalValue right, Eval(*expr.right, binding));

  // Interval predicates.
  switch (expr.op) {
    case BinaryOp::kOverlaps:
    case BinaryOp::kContains:
    case BinaryOp::kBefore:
    case BinaryOp::kMeets:
    case BinaryOp::kDuring: {
      TCOB_ASSIGN_OR_RETURN(Interval a, AsInterval(left));
      // CONTAINS accepts an instant on the right.
      if (expr.op == BinaryOp::kContains && !IsInterval(right)) {
        const Value& v = std::get<Value>(right);
        if (!v.is_null() && (v.type() == AttrType::kTimestamp ||
                             v.type() == AttrType::kInt)) {
          Timestamp t =
              v.type() == AttrType::kTimestamp ? v.AsTime() : v.AsInt();
          return EvalValue(Value::Bool(a.Contains(t)));
        }
      }
      TCOB_ASSIGN_OR_RETURN(Interval b, AsInterval(right));
      bool result = false;
      switch (expr.op) {
        case BinaryOp::kOverlaps:
          result = a.Overlaps(b);
          break;
        case BinaryOp::kContains:
          result = a.Contains(b);
          break;
        case BinaryOp::kBefore:
          result = a.Before(b);
          break;
        case BinaryOp::kMeets:
          result = a.Meets(b);
          break;
        case BinaryOp::kDuring:
          result = a.During(b);
          break;
        default:
          break;
      }
      return EvalValue(Value::Bool(result));
    }
    default:
      break;
  }

  // Scalar comparisons. Intervals support = / != as well.
  if (IsInterval(left) || IsInterval(right)) {
    if (expr.op == BinaryOp::kEq || expr.op == BinaryOp::kNe) {
      TCOB_ASSIGN_OR_RETURN(Interval a, AsInterval(left));
      TCOB_ASSIGN_OR_RETURN(Interval b, AsInterval(right));
      bool eq = a == b;
      return EvalValue(Value::Bool(expr.op == BinaryOp::kEq ? eq : !eq));
    }
    return Status::TypeError("intervals only support =, != and the "
                             "temporal predicates");
  }

  const Value& a = std::get<Value>(left);
  const Value& b = std::get<Value>(right);
  // Predicates over NULL are false (the model predates 3VL; see value.h).
  if (a.is_null() || b.is_null()) {
    if (expr.op == BinaryOp::kEq) {
      return EvalValue(Value::Bool(a.is_null() && b.is_null()));
    }
    if (expr.op == BinaryOp::kNe) {
      return EvalValue(Value::Bool(a.is_null() != b.is_null()));
    }
    return EvalValue(Value::Bool(false));
  }
  TCOB_ASSIGN_OR_RETURN(int cmp, a.Compare(b));
  bool result = false;
  switch (expr.op) {
    case BinaryOp::kEq:
      result = cmp == 0;
      break;
    case BinaryOp::kNe:
      result = cmp != 0;
      break;
    case BinaryOp::kLt:
      result = cmp < 0;
      break;
    case BinaryOp::kLe:
      result = cmp <= 0;
      break;
    case BinaryOp::kGt:
      result = cmp > 0;
      break;
    case BinaryOp::kGe:
      result = cmp >= 0;
      break;
    default:
      return Status::Internal("unhandled binary op");
  }
  return EvalValue(Value::Bool(result));
}

Result<bool> ExprEvaluator::EvalBool(const Expr& expr,
                                     const Binding& binding) const {
  TCOB_ASSIGN_OR_RETURN(EvalValue v, Eval(expr, binding));
  if (IsInterval(v)) {
    return Status::TypeError("interval used as a boolean");
  }
  const Value& value = std::get<Value>(v);
  if (value.is_null()) return false;
  if (value.type() != AttrType::kBool) {
    return Status::TypeError("non-boolean predicate");
  }
  return value.AsBool();
}

Result<bool> ExprEvaluator::Satisfies(const Expr& expr,
                                      const Molecule& molecule) const {
  std::set<std::string> types;
  CollectTypes(expr, &types);
  TCOB_ASSIGN_OR_RETURN(std::vector<Binding> bindings,
                        EnumerateBindings(molecule, types));
  if (types.empty()) {
    // No atom references: evaluate once with an empty binding.
    Binding empty;
    return EvalBool(expr, empty);
  }
  for (const Binding& b : bindings) {
    TCOB_ASSIGN_OR_RETURN(bool ok, EvalBool(expr, b));
    if (ok) return true;
  }
  return false;
}

}  // namespace tcob
