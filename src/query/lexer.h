#ifndef TCOB_QUERY_LEXER_H_
#define TCOB_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/token.h"

namespace tcob {

/// Tokenizes one MQL statement string.
///
/// Keywords are case-insensitive; identifiers keep their case. String
/// literals use single quotes with '' as the escape. `--` starts a
/// comment to end of line.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace tcob

#endif  // TCOB_QUERY_LEXER_H_
