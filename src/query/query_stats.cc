#include "query/query_stats.h"

#include <cmath>

namespace tcob {

namespace {

// Wall times are reported at 0.001us granularity; raw doubles would
// render with noise digits that make the output unstable to diff.
double RoundUs(double us) { return std::round(us * 1000.0) / 1000.0; }

}  // namespace

ResultSet QueryStats::ToResultSet() const {
  ResultSet out;
  out.columns = {"SECTION", "METRIC", "VALUE"};
  auto text = [&](const char* section, const char* metric,
                  const std::string& value) {
    out.rows.push_back({Value::String(section), Value::String(metric),
                        Value::String(value)});
  };
  auto num = [&](const char* section, const char* metric, uint64_t value) {
    out.rows.push_back({Value::String(section), Value::String(metric),
                        Value::Int(static_cast<int64_t>(value))});
  };
  auto us = [&](const char* section, const char* metric, double value) {
    out.rows.push_back({Value::String(section), Value::String(metric),
                        Value::Double(RoundUs(value))});
  };
  auto rate = [&](const char* section, const char* metric, double value) {
    out.rows.push_back({Value::String(section), Value::String(metric),
                        Value::Double(std::round(value * 10000.0) / 10000.0)});
  };

  text("query", "statement", statement);
  text("query", "plan", plan);
  text("query", "temporal_mode", temporal_mode);
  text("query", "strategy", strategy);
  num("query", "parallelism", parallelism);
  text("query", "disposition", disposition);

  us("timing", "parse_us", parse_us);
  us("timing", "plan_us", plan_us);
  us("timing", "materialize_us", materialize_us);
  us("timing", "emit_us", emit_us);
  us("timing", "aggregate_us", aggregate_us);
  us("timing", "sort_us", sort_us);
  us("timing", "execute_us", execute_us);
  us("timing", "total_us", total_us);

  num("result", "molecules", molecules);
  num("result", "states", states);
  num("result", "rows", rows);
  num("result", "atoms_visited", atoms_visited);

  us("streaming", "first_row_us", first_row_us);
  num("streaming", "rows_streamed", rows_streamed);
  num("streaming", "peak_buffered_rows", peak_buffered_rows);

  num("store", "get_as_of", store.get_as_of);
  num("store", "get_versions", store.get_versions);
  num("store", "scan_as_of", store.scan_as_of);
  num("store", "scan_versions", store.scan_versions);
  num("store", "total_accesses", store.Total());

  num("tiering", "segments_pruned", tiering.segments_pruned);
  num("tiering", "segments_scanned", tiering.segments_scanned);
  num("tiering", "cold_versions", tiering.cold_versions);

  num("version_cache", "atom_hits", cache.atom_hits);
  num("version_cache", "atom_misses", cache.atom_misses);
  num("version_cache", "link_hits", cache.link_hits);
  num("version_cache", "link_misses", cache.link_misses);
  num("version_cache", "versions_pinned", cache.versions_pinned);
  num("version_cache", "link_instances_pinned", cache.link_instances_pinned);
  rate("version_cache", "hit_rate", cache.HitRate());

  num("buffer_pool", "fetches", pool.fetches);
  num("buffer_pool", "hits", pool.hits);
  num("buffer_pool", "misses", pool.misses);
  num("buffer_pool", "evictions", pool.evictions);
  rate("buffer_pool", "hit_rate", pool.HitRate());

  num("governance", "peak_memory_bytes", peak_memory_bytes);
  num("governance", "memory_overflow_bytes", memory_overflow_bytes);
  us("governance", "admission_wait_us", admission_wait_us);

  for (size_t w = 0; w < worker_us.size(); ++w) {
    us("workers", ("worker_" + std::to_string(w) + "_us").c_str(),
       worker_us[w]);
  }
  return out;
}

}  // namespace tcob
