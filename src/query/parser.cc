#include "query/parser.h"

#include "query/lexer.h"

namespace tcob {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kOverlaps:
      return "OVERLAPS";
    case BinaryOp::kContains:
      return "CONTAINS";
    case BinaryOp::kBefore:
      return "BEFORE";
    case BinaryOp::kMeets:
      return "MEETS";
    case BinaryOp::kDuring:
      return "DURING";
  }
  return "?";
}

Status Parser::ErrorHere(const std::string& msg) const {
  return Status::ParseError(msg + " (near offset " +
                            std::to_string(Peek().offset) + ", got " +
                            TokenTypeName(Peek().type) +
                            (Peek().text.empty() ? "" : " '" + Peek().text +
                                                            "'") +
                            ")");
}

Status Parser::Expect(TokenType t, const char* context) {
  if (Match(t)) return Status::OK();
  return ErrorHere(std::string("expected ") + TokenTypeName(t) + " in " +
                   context);
}

Result<Statement> Parser::Parse(const std::string& input) {
  TCOB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  TCOB_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (!parser.Peek().Is(TokenType::kEof)) {
    return parser.ErrorHere("trailing input after statement");
  }
  return stmt;
}

Result<std::vector<Statement>> Parser::ParseScript(const std::string& input) {
  TCOB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  std::vector<Statement> out;
  while (!parser.Peek().Is(TokenType::kEof)) {
    if (parser.Match(TokenType::kSemicolon)) continue;
    TCOB_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<Statement> Parser::ParseStatement() {
  switch (Peek().type) {
    case TokenType::kSelect:
      return ParseSelect();
    case TokenType::kCreate:
      return ParseCreate();
    case TokenType::kInsert:
      return ParseInsert();
    case TokenType::kUpdate:
      return ParseUpdate();
    case TokenType::kDelete:
      return ParseDelete();
    case TokenType::kConnect:
      return ParseConnect(true);
    case TokenType::kDisconnect:
      return ParseConnect(false);
    case TokenType::kShow: {
      Advance();
      if (Match(TokenType::kStats)) return Statement(ShowStatsStmt{});
      TCOB_RETURN_NOT_OK(Expect(TokenType::kCatalog, "SHOW"));
      return Statement(ShowCatalogStmt{});
    }
    case TokenType::kVacuum: {
      Advance();
      TCOB_RETURN_NOT_OK(Expect(TokenType::kBefore, "VACUUM"));
      if (!Peek().Is(TokenType::kInt)) {
        return ErrorHere("expected a chronon number after VACUUM BEFORE");
      }
      VacuumStmt stmt;
      stmt.before = Advance().int_value;
      return Statement(stmt);
    }
    case TokenType::kBegin:
      // Statement position: BEGIN opens the session transaction (the
      // keyword also appears as the interval accessor BEGIN(x), which
      // only occurs inside expressions).
      Advance();
      return Statement(BeginStmt{});
    case TokenType::kCommit:
      Advance();
      return Statement(CommitStmt{});
    case TokenType::kAbort:
      Advance();
      return Statement(AbortStmt{});
    case TokenType::kExplain: {
      Advance();
      ExplainStmt explain;
      explain.analyze = Match(TokenType::kAnalyze);
      if (!Peek().Is(TokenType::kSelect)) {
        return ErrorHere(explain.analyze
                             ? "EXPLAIN ANALYZE supports SELECT statements only"
                             : "EXPLAIN supports SELECT statements only");
      }
      TCOB_ASSIGN_OR_RETURN(Statement inner, ParseSelect());
      explain.select = std::move(std::get<SelectStmt>(inner));
      return Statement(std::move(explain));
    }
    default:
      return ErrorHere("expected a statement");
  }
}

Result<std::pair<Timestamp, bool>> Parser::ParseInstant() {
  if (Match(TokenType::kNow)) return std::make_pair(Timestamp(0), true);
  if (Peek().Is(TokenType::kInt)) {
    Timestamp t = Advance().int_value;
    return std::make_pair(t, false);
  }
  return ErrorHere("expected a chronon number or NOW");
}

Result<Statement> Parser::ParseSelect() {
  Advance();  // SELECT
  SelectStmt stmt;
  auto agg_fn_of = [](TokenType t) -> std::optional<AggFn> {
    switch (t) {
      case TokenType::kCount:
        return AggFn::kCount;
      case TokenType::kSum:
        return AggFn::kSum;
      case TokenType::kAvg:
        return AggFn::kAvg;
      case TokenType::kMin:
        return AggFn::kMin;
      case TokenType::kMax:
        return AggFn::kMax;
      default:
        return std::nullopt;
    }
  };
  if (Match(TokenType::kAll)) {
    stmt.select_all = true;
  } else if (agg_fn_of(Peek().type).has_value()) {
    do {
      std::optional<AggFn> fn = agg_fn_of(Peek().type);
      if (!fn.has_value()) {
        return ErrorHere("aggregates cannot be mixed with plain columns");
      }
      Advance();
      AggSpec agg;
      agg.fn = *fn;
      TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "aggregate"));
      if (Match(TokenType::kStar)) {
        if (agg.fn != AggFn::kCount) {
          return ErrorHere("only COUNT accepts *");
        }
        agg.star = true;
      } else {
        if (!Peek().Is(TokenType::kIdent)) {
          return ErrorHere("expected Type.attr in aggregate");
        }
        agg.ref.type_name = Advance().text;
        TCOB_RETURN_NOT_OK(Expect(TokenType::kDot, "aggregate"));
        if (!Peek().Is(TokenType::kIdent)) {
          return ErrorHere("expected attribute name after '.'");
        }
        agg.ref.attr_name = Advance().text;
      }
      TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "aggregate"));
      stmt.aggregates.push_back(std::move(agg));
    } while (Match(TokenType::kComma));
  } else {
    do {
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected Type.attr in projection");
      }
      AttrRef ref;
      ref.type_name = Advance().text;
      TCOB_RETURN_NOT_OK(Expect(TokenType::kDot, "projection"));
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected attribute name after '.'");
      }
      ref.attr_name = Advance().text;
      stmt.projection.push_back(std::move(ref));
    } while (Match(TokenType::kComma));
  }
  TCOB_RETURN_NOT_OK(Expect(TokenType::kFrom, "SELECT"));
  if (!Peek().Is(TokenType::kIdent)) {
    return ErrorHere("expected molecule type name after FROM");
  }
  stmt.molecule_type = Advance().text;
  if (Match(TokenType::kVia)) {
    // Inline molecule definition: the FROM name is the root atom type.
    stmt.inline_root = std::move(stmt.molecule_type);
    stmt.molecule_type.clear();
    do {
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected link name after VIA");
      }
      std::string link = Advance().text;
      bool forward = true;
      if (Match(TokenType::kBackward)) {
        forward = false;
      } else {
        Match(TokenType::kForward);
      }
      stmt.inline_edges.emplace_back(std::move(link), forward);
    } while (Match(TokenType::kComma));
  }
  if (Match(TokenType::kWhere)) {
    TCOB_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (Match(TokenType::kGroup)) {
    TCOB_RETURN_NOT_OK(Expect(TokenType::kBy, "GROUP BY"));
    TCOB_RETURN_NOT_OK(Expect(TokenType::kRoot, "GROUP BY"));
    if (stmt.aggregates.empty()) {
      return ErrorHere("GROUP BY ROOT requires an aggregate select list");
    }
    stmt.group_by_root = true;
  }
  if (Match(TokenType::kOrder)) {
    TCOB_RETURN_NOT_OK(Expect(TokenType::kBy, "ORDER BY"));
    if (Match(TokenType::kRoot)) {
      stmt.order_by = "ROOT";
    } else {
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected ROOT or Type.attr after ORDER BY");
      }
      stmt.order_by = Advance().text;
      TCOB_RETURN_NOT_OK(Expect(TokenType::kDot, "ORDER BY"));
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected attribute name after '.'");
      }
      stmt.order_by += "." + Advance().text;
    }
    if (Match(TokenType::kDesc)) {
      stmt.order_desc = true;
    } else {
      Match(TokenType::kAsc);
    }
  }
  if (Match(TokenType::kValid)) {
    if (Match(TokenType::kAt)) {
      stmt.mode = TemporalMode::kAsOf;
      TCOB_ASSIGN_OR_RETURN(auto instant, ParseInstant());
      stmt.at = instant.first;
      stmt.at_now = instant.second;
    } else if (Match(TokenType::kIn)) {
      stmt.mode = TemporalMode::kWindow;
      bool begin_now = false, end_now = false;
      TCOB_ASSIGN_OR_RETURN(stmt.window,
                            ParseIntervalLiteral(&begin_now, &end_now));
      if (begin_now) {
        return ErrorHere("VALID IN window cannot begin at NOW");
      }
      stmt.window_end_now = end_now;
    } else {
      return ErrorHere("expected AT or IN after VALID");
    }
  } else if (Match(TokenType::kHistory)) {
    stmt.mode = TemporalMode::kHistory;
  }
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseCreate() {
  Advance();  // CREATE
  if (Match(TokenType::kAtomType)) {
    CreateAtomTypeStmt stmt;
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected type name");
    stmt.name = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "CREATE ATOM_TYPE"));
    do {
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected attribute name");
      }
      std::string attr = Advance().text;
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected attribute type");
      }
      std::string type_name = Advance().text;
      for (char& c : type_name) c = static_cast<char>(toupper(c));
      TCOB_ASSIGN_OR_RETURN(AttrType type, AttrTypeFromName(type_name));
      stmt.attributes.emplace_back(std::move(attr), type);
    } while (Match(TokenType::kComma));
    TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "CREATE ATOM_TYPE"));
    return Statement(std::move(stmt));
  }
  if (Match(TokenType::kLink)) {
    CreateLinkStmt stmt;
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected link name");
    stmt.name = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kFrom, "CREATE LINK"));
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected from-type");
    stmt.from_type = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kTo, "CREATE LINK"));
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected to-type");
    stmt.to_type = Advance().text;
    return Statement(std::move(stmt));
  }
  if (Match(TokenType::kMoleculeType)) {
    CreateMoleculeTypeStmt stmt;
    if (!Peek().Is(TokenType::kIdent)) {
      return ErrorHere("expected molecule type name");
    }
    stmt.name = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kRoot, "CREATE MOLECULE_TYPE"));
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected root type");
    stmt.root_type = Advance().text;
    if (Match(TokenType::kEdges)) {
      TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "EDGES"));
      do {
        if (!Peek().Is(TokenType::kIdent)) {
          return ErrorHere("expected link name in EDGES");
        }
        std::string link = Advance().text;
        bool forward = true;
        if (Match(TokenType::kBackward)) {
          forward = false;
        } else {
          Match(TokenType::kForward);
        }
        stmt.edges.emplace_back(std::move(link), forward);
      } while (Match(TokenType::kComma));
      TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "EDGES"));
    }
    return Statement(std::move(stmt));
  }
  if (Match(TokenType::kIndex)) {
    CreateIndexStmt stmt;
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected index name");
    stmt.name = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kOn, "CREATE INDEX"));
    if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected atom type");
    stmt.type_name = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "CREATE INDEX"));
    if (!Peek().Is(TokenType::kIdent)) {
      return ErrorHere("expected attribute name");
    }
    stmt.attr_name = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "CREATE INDEX"));
    return Statement(std::move(stmt));
  }
  return ErrorHere(
      "expected ATOM_TYPE, LINK, MOLECULE_TYPE or INDEX after CREATE");
}

Result<Value> Parser::ParseLiteralValue() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInt:
      Advance();
      return Value::Int(tok.int_value);
    case TokenType::kFloat:
      Advance();
      return Value::Double(tok.float_value);
    case TokenType::kString:
      Advance();
      return Value::String(tok.text);
    case TokenType::kTrue:
      Advance();
      return Value::Bool(true);
    case TokenType::kFalse:
      Advance();
      return Value::Bool(false);
    case TokenType::kNull:
      Advance();
      // Placeholder type; the executor re-types NULLs per target attr.
      return Value::Null(AttrType::kString);
    default:
      return ErrorHere("expected a literal value");
  }
}

Result<std::vector<std::pair<std::string, Value>>> Parser::ParseAssignments() {
  std::vector<std::pair<std::string, Value>> out;
  do {
    if (!Peek().Is(TokenType::kIdent)) {
      return ErrorHere("expected attribute name");
    }
    std::string attr = Advance().text;
    TCOB_RETURN_NOT_OK(Expect(TokenType::kEq, "assignment"));
    TCOB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
    out.emplace_back(std::move(attr), std::move(v));
  } while (Match(TokenType::kComma));
  return out;
}

Result<ValidFrom> Parser::ParseValidFrom() {
  ValidFrom from;
  if (Match(TokenType::kValid)) {
    TCOB_RETURN_NOT_OK(Expect(TokenType::kFrom, "VALID FROM"));
    TCOB_ASSIGN_OR_RETURN(auto instant, ParseInstant());
    from.at = instant.first;
    from.is_now = instant.second;
  }
  return from;
}

Result<Statement> Parser::ParseInsert() {
  Advance();  // INSERT
  TCOB_RETURN_NOT_OK(Expect(TokenType::kAtom, "INSERT"));
  InsertStmt stmt;
  if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected atom type");
  stmt.type_name = Advance().text;
  TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "INSERT ATOM"));
  TCOB_ASSIGN_OR_RETURN(stmt.assignments, ParseAssignments());
  TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "INSERT ATOM"));
  TCOB_ASSIGN_OR_RETURN(stmt.from, ParseValidFrom());
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseUpdate() {
  Advance();  // UPDATE
  TCOB_RETURN_NOT_OK(Expect(TokenType::kAtom, "UPDATE"));
  UpdateStmt stmt;
  if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected atom type");
  stmt.type_name = Advance().text;
  if (!Peek().Is(TokenType::kInt)) return ErrorHere("expected atom id");
  stmt.atom_id = static_cast<AtomId>(Advance().int_value);
  TCOB_RETURN_NOT_OK(Expect(TokenType::kSet, "UPDATE ATOM"));
  TCOB_ASSIGN_OR_RETURN(stmt.assignments, ParseAssignments());
  TCOB_ASSIGN_OR_RETURN(stmt.from, ParseValidFrom());
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseDelete() {
  Advance();  // DELETE
  TCOB_RETURN_NOT_OK(Expect(TokenType::kAtom, "DELETE"));
  DeleteStmt stmt;
  if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected atom type");
  stmt.type_name = Advance().text;
  if (!Peek().Is(TokenType::kInt)) return ErrorHere("expected atom id");
  stmt.atom_id = static_cast<AtomId>(Advance().int_value);
  TCOB_ASSIGN_OR_RETURN(stmt.from, ParseValidFrom());
  return Statement(std::move(stmt));
}

Result<Statement> Parser::ParseConnect(bool connect) {
  Advance();  // CONNECT / DISCONNECT
  std::string link_name;
  if (!Peek().Is(TokenType::kIdent)) return ErrorHere("expected link name");
  link_name = Advance().text;
  TCOB_RETURN_NOT_OK(Expect(TokenType::kFrom, "CONNECT"));
  if (!Peek().Is(TokenType::kInt)) return ErrorHere("expected from atom id");
  AtomId from_id = static_cast<AtomId>(Advance().int_value);
  TCOB_RETURN_NOT_OK(Expect(TokenType::kTo, "CONNECT"));
  if (!Peek().Is(TokenType::kInt)) return ErrorHere("expected to atom id");
  AtomId to_id = static_cast<AtomId>(Advance().int_value);
  TCOB_ASSIGN_OR_RETURN(ValidFrom from, ParseValidFrom());
  if (connect) {
    return Statement(ConnectStmt{link_name, from_id, to_id, from});
  }
  return Statement(DisconnectStmt{link_name, from_id, to_id, from});
}

// ---- expressions ----

Result<ExprPtr> Parser::ParseExpr() {
  if (expr_depth_ >= kMaxExprDepth) {
    return ErrorHere("expression nested deeper than " +
                     std::to_string(kMaxExprDepth) + " levels");
  }
  ++expr_depth_;
  Result<ExprPtr> out = ParseOr();
  --expr_depth_;
  return out;
}

Result<ExprPtr> Parser::ParseOr() {
  TCOB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Match(TokenType::kOr)) {
    TCOB_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    auto expr = std::make_unique<Expr>();
    expr->node = BinaryExpr{BinaryOp::kOr, std::move(left), std::move(right)};
    left = std::move(expr);
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  TCOB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Match(TokenType::kAnd)) {
    TCOB_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    auto expr = std::make_unique<Expr>();
    expr->node = BinaryExpr{BinaryOp::kAnd, std::move(left), std::move(right)};
    left = std::move(expr);
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match(TokenType::kNot)) {
    // NOT chains recurse without passing through ParseExpr; count them
    // against the same depth budget.
    if (expr_depth_ >= kMaxExprDepth) {
      return ErrorHere("expression nested deeper than " +
                       std::to_string(kMaxExprDepth) + " levels");
    }
    ++expr_depth_;
    Result<ExprPtr> operand_or = ParseNot();
    --expr_depth_;
    TCOB_ASSIGN_OR_RETURN(ExprPtr operand, std::move(operand_or));
    auto expr = std::make_unique<Expr>();
    expr->node = UnaryExpr{UnaryOp::kNot, std::move(operand)};
    return expr;
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  TCOB_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    case TokenType::kOverlaps:
      op = BinaryOp::kOverlaps;
      break;
    case TokenType::kContains:
      op = BinaryOp::kContains;
      break;
    case TokenType::kBefore:
      op = BinaryOp::kBefore;
      break;
    case TokenType::kMeets:
      op = BinaryOp::kMeets;
      break;
    case TokenType::kDuring:
      op = BinaryOp::kDuring;
      break;
    default:
      return left;  // bare primary (e.g. a boolean attribute)
  }
  Advance();
  TCOB_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
  auto expr = std::make_unique<Expr>();
  expr->node = BinaryExpr{op, std::move(left), std::move(right)};
  return expr;
}

Result<Interval> Parser::ParseIntervalLiteral(bool* begin_now,
                                              bool* end_now) {
  TCOB_RETURN_NOT_OK(Expect(TokenType::kLBracket, "interval literal"));
  TCOB_ASSIGN_OR_RETURN(auto begin, ParseInstant());
  TCOB_RETURN_NOT_OK(Expect(TokenType::kComma, "interval literal"));
  TCOB_ASSIGN_OR_RETURN(auto end, ParseInstant());
  TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "interval literal"));
  *begin_now = begin.second;
  *end_now = end.second;
  return Interval(begin.first, end.first);
}

Result<ExprPtr> Parser::ParsePrimary() {
  auto expr = std::make_unique<Expr>();
  switch (Peek().type) {
    case TokenType::kLParen: {
      Advance();
      TCOB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "parenthesized expr"));
      return inner;
    }
    case TokenType::kLBracket: {
      IntervalExpr iv;
      TCOB_ASSIGN_OR_RETURN(
          iv.interval, ParseIntervalLiteral(&iv.begin_is_now, &iv.end_is_now));
      expr->node = std::move(iv);
      return expr;
    }
    case TokenType::kValid: {
      Advance();
      TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "VALID()"));
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected atom type name in VALID()");
      }
      ValidOfExpr v;
      v.type_name = Advance().text;
      TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "VALID()"));
      expr->node = std::move(v);
      return expr;
    }
    case TokenType::kBegin:
    case TokenType::kEnd: {
      BoundaryExpr b;
      b.is_begin = Peek().Is(TokenType::kBegin);
      Advance();
      TCOB_RETURN_NOT_OK(Expect(TokenType::kLParen, "BEGIN/END"));
      TCOB_ASSIGN_OR_RETURN(b.operand, ParsePrimary());
      TCOB_RETURN_NOT_OK(Expect(TokenType::kRParen, "BEGIN/END"));
      expr->node = std::move(b);
      return expr;
    }
    case TokenType::kNow: {
      Advance();
      expr->node = NowExpr{};
      return expr;
    }
    case TokenType::kIdent: {
      AttrRefExpr a;
      a.ref.type_name = Advance().text;
      TCOB_RETURN_NOT_OK(Expect(TokenType::kDot, "attribute reference"));
      if (!Peek().Is(TokenType::kIdent)) {
        return ErrorHere("expected attribute name after '.'");
      }
      a.ref.attr_name = Advance().text;
      expr->node = std::move(a);
      return expr;
    }
    default: {
      TCOB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      expr->node = LiteralExpr{std::move(v)};
      return expr;
    }
  }
}

}  // namespace tcob
