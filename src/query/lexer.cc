#include "query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace tcob {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kInt:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'!='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kEof:
      return "end of input";
    default:
      return "keyword";
  }
}

namespace {

const std::map<std::string, TokenType>& Keywords() {
  static const auto* kKeywords = new std::map<std::string, TokenType>{
      {"SELECT", TokenType::kSelect},
      {"ALL", TokenType::kAll},
      {"FROM", TokenType::kFrom},
      {"WHERE", TokenType::kWhere},
      {"VALID", TokenType::kValid},
      {"AT", TokenType::kAt},
      {"IN", TokenType::kIn},
      {"HISTORY", TokenType::kHistory},
      {"AND", TokenType::kAnd},
      {"OR", TokenType::kOr},
      {"NOT", TokenType::kNot},
      {"TRUE", TokenType::kTrue},
      {"FALSE", TokenType::kFalse},
      {"NOW", TokenType::kNow},
      {"NULL", TokenType::kNull},
      {"OVERLAPS", TokenType::kOverlaps},
      {"CONTAINS", TokenType::kContains},
      {"BEFORE", TokenType::kBefore},
      {"MEETS", TokenType::kMeets},
      {"DURING", TokenType::kDuring},
      {"BEGIN", TokenType::kBegin},
      {"END", TokenType::kEnd},
      {"CREATE", TokenType::kCreate},
      {"ATOM_TYPE", TokenType::kAtomType},
      {"LINK", TokenType::kLink},
      {"MOLECULE_TYPE", TokenType::kMoleculeType},
      {"ROOT", TokenType::kRoot},
      {"EDGES", TokenType::kEdges},
      {"FORWARD", TokenType::kForward},
      {"BACKWARD", TokenType::kBackward},
      {"TO", TokenType::kTo},
      {"INSERT", TokenType::kInsert},
      {"ATOM", TokenType::kAtom},
      {"UPDATE", TokenType::kUpdate},
      {"DELETE", TokenType::kDelete},
      {"CONNECT", TokenType::kConnect},
      {"DISCONNECT", TokenType::kDisconnect},
      {"SET", TokenType::kSet},
      {"SHOW", TokenType::kShow},
      {"CATALOG", TokenType::kCatalog},
      {"INDEX", TokenType::kIndex},
      {"ON", TokenType::kOn},
      {"EXPLAIN", TokenType::kExplain},
      {"ANALYZE", TokenType::kAnalyze},
      {"VACUUM", TokenType::kVacuum},
      {"COUNT", TokenType::kCount},
      {"SUM", TokenType::kSum},
      {"AVG", TokenType::kAvg},
      {"MIN", TokenType::kMin},
      {"MAX", TokenType::kMax},
      {"STATS", TokenType::kStats},
      {"GROUP", TokenType::kGroup},
      {"BY", TokenType::kBy},
      {"VIA", TokenType::kVia},
      {"ORDER", TokenType::kOrder},
      {"DESC", TokenType::kDesc},
      {"ASC", TokenType::kAsc},
      {"COMMIT", TokenType::kCommit},
      {"ABORT", TokenType::kAbort},
  };
  return *kKeywords;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(toupper(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(i));
  };
  while (i < n) {
    char c = input[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    switch (c) {
      case '(':
        tok.type = TokenType::kLParen;
        ++i;
        break;
      case ')':
        tok.type = TokenType::kRParen;
        ++i;
        break;
      case '[':
        tok.type = TokenType::kLBracket;
        ++i;
        break;
      case ',':
        tok.type = TokenType::kComma;
        ++i;
        break;
      case '.':
        tok.type = TokenType::kDot;
        ++i;
        break;
      case ';':
        tok.type = TokenType::kSemicolon;
        ++i;
        break;
      case '*':
        tok.type = TokenType::kStar;
        ++i;
        break;
      case '=':
        tok.type = TokenType::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kNe;
          i += 2;
        } else {
          return error("unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kLe;
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          tok.type = TokenType::kNe;
          i += 2;
        } else {
          tok.type = TokenType::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kGe;
          i += 2;
        } else {
          tok.type = TokenType::kGt;
          ++i;
        }
        break;
      case '\'': {
        // String literal; '' escapes a quote.
        ++i;
        std::string text;
        bool closed = false;
        while (i < n) {
          if (input[i] == '\'') {
            if (i + 1 < n && input[i + 1] == '\'') {
              text.push_back('\'');
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            text.push_back(input[i++]);
          }
        }
        if (!closed) return error("unterminated string literal");
        tok.type = TokenType::kString;
        tok.text = std::move(text);
        break;
      }
      default: {
        if (isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && i + 1 < n &&
             isdigit(static_cast<unsigned char>(input[i + 1])))) {
          size_t start = i;
          if (c == '-') ++i;
          while (i < n && isdigit(static_cast<unsigned char>(input[i]))) ++i;
          bool is_float = false;
          if (i < n && input[i] == '.' && i + 1 < n &&
              isdigit(static_cast<unsigned char>(input[i + 1]))) {
            is_float = true;
            ++i;
            while (i < n && isdigit(static_cast<unsigned char>(input[i]))) {
              ++i;
            }
          }
          std::string num = input.substr(start, i - start);
          if (is_float) {
            tok.type = TokenType::kFloat;
            tok.float_value = strtod(num.c_str(), nullptr);
          } else {
            tok.type = TokenType::kInt;
            tok.int_value = strtoll(num.c_str(), nullptr, 10);
          }
        } else if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
          size_t start = i;
          while (i < n && (isalnum(static_cast<unsigned char>(input[i])) ||
                           input[i] == '_')) {
            ++i;
          }
          std::string word = input.substr(start, i - start);
          auto kw = Keywords().find(ToUpper(word));
          if (kw != Keywords().end()) {
            tok.type = kw->second;
          } else {
            tok.type = TokenType::kIdent;
          }
          tok.text = std::move(word);
        } else {
          return error(std::string("unexpected character '") + c + "'");
        }
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace tcob
