#include "query/executor.h"

#include <set>

#include "query/expr_eval.h"
#include "query/planner.h"

namespace tcob {

Result<std::string> SelectExecutor::RenderAttrs(const AtomVersion& v) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def, catalog_->GetAtomType(v.type));
  std::string out;
  for (size_t i = 0; i < def->attributes.size() && i < v.attrs.size(); ++i) {
    if (i) out += ", ";
    out += def->attributes[i].name + "=" + v.attrs[i].ToString();
  }
  return out;
}

Result<bool> SelectExecutor::EmitMolecule(const SelectStmt& stmt,
                                          const SelectPlan& plan,
                                          const Molecule& molecule,
                                          const Interval* state_valid,
                                          RowSink* sink) const {
  ExprEvaluator eval(catalog_, now_);

  auto push_state_columns = [&](std::vector<Value>* row) {
    if (state_valid != nullptr) {
      row->push_back(Value::Time(state_valid->begin));
      row->push_back(Value::Time(state_valid->end));
    }
  };

  if (plan.select_all) {
    if (stmt.where != nullptr) {
      TCOB_ASSIGN_OR_RETURN(bool ok, eval.Satisfies(*stmt.where, molecule));
      if (!ok) return true;
    }
    for (const auto& [id, version] : molecule.atoms) {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                            catalog_->GetAtomType(version.type));
      std::vector<Value> row;
      row.push_back(Value::Id(molecule.root));
      push_state_columns(&row);
      row.push_back(Value::Id(id));
      row.push_back(Value::String(def->name));
      TCOB_ASSIGN_OR_RETURN(std::string attrs, RenderAttrs(version));
      row.push_back(Value::String(std::move(attrs)));
      TCOB_ASSIGN_OR_RETURN(bool more, sink->Push(std::move(row)));
      if (!more) return false;
    }
    return true;
  }

  // Projection: enumerate bindings over projected + predicate types.
  std::set<std::string> binding_types;
  for (const AttrRef& ref : plan.projection) {
    binding_types.insert(ref.type_name);
  }
  if (stmt.where != nullptr) {
    ExprEvaluator::CollectTypes(*stmt.where, &binding_types);
  }
  TCOB_ASSIGN_OR_RETURN(std::vector<Binding> bindings,
                        eval.EnumerateBindings(molecule, binding_types));
  // (An empty binding-type set yields exactly one empty binding — one
  // row per molecule, which is what COUNT(*) wants.)
  // De-duplicate projected rows when the predicate-only types fan out.
  std::set<std::vector<std::string>> seen;
  for (const Binding& binding : bindings) {
    if (stmt.where != nullptr) {
      TCOB_ASSIGN_OR_RETURN(bool ok, eval.EvalBool(*stmt.where, binding));
      if (!ok) continue;
    }
    std::vector<Value> row;
    row.push_back(Value::Id(molecule.root));
    push_state_columns(&row);
    std::vector<std::string> fingerprint;
    for (const AttrRef& ref : plan.projection) {
      auto it = binding.atoms.find(ref.type_name);
      if (it == binding.atoms.end()) {
        return Status::Internal("projection type unbound: " + ref.type_name);
      }
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                            catalog_->GetAtomTypeByName(ref.type_name));
      int idx = def->AttrIndex(ref.attr_name);
      if (idx < 0) {
        return Status::InvalidArgument("unknown attribute " + ref.ToString());
      }
      row.push_back(it->second->attrs[idx]);
      fingerprint.push_back(std::to_string(it->second->id));
    }
    if (!seen.insert(fingerprint).second) continue;
    TCOB_ASSIGN_OR_RETURN(bool more, sink->Push(std::move(row)));
    if (!more) return false;
  }
  return true;
}

namespace {

/// The row indices of one aggregation group.
using RowGroup = std::vector<size_t>;

}  // namespace

Result<ResultSet> SelectExecutor::FoldAggregates(
    const SelectStmt& stmt, const std::vector<AttrRef>& projection,
    bool windowed, const ResultSet& rows) const {
  const size_t base = 1 + (windowed ? 2 : 0);
  // Partition the hidden-projection rows into groups: one global group,
  // or one per molecule root for GROUP BY ROOT.
  std::map<AtomId, RowGroup> groups;
  if (stmt.group_by_root) {
    for (size_t i = 0; i < rows.rows.size(); ++i) {
      groups[rows.rows[i][0].AsId()].push_back(i);
    }
  } else {
    RowGroup& all = groups[kInvalidAtomId];
    all.resize(rows.rows.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  }

  ResultSet out;
  if (stmt.group_by_root) out.columns.push_back("ROOT");
  for (const AggSpec& agg : stmt.aggregates) {
    out.columns.push_back(agg.ToString());
  }
  for (const auto& [root, group] : groups) {
    std::vector<Value> result_row;
    if (stmt.group_by_root) result_row.push_back(Value::Id(root));
    TCOB_RETURN_NOT_OK(
        FoldGroup(stmt, projection, base, rows, group, &result_row));
    out.rows.push_back(std::move(result_row));
  }
  out.message = rows.message;
  return out;
}

Status SelectExecutor::FoldGroup(const SelectStmt& stmt,
                                 const std::vector<AttrRef>& projection,
                                 size_t base, const ResultSet& rows,
                                 const std::vector<size_t>& group,
                                 std::vector<Value>* result_row) const {
  for (const AggSpec& agg : stmt.aggregates) {
    if (agg.fn == AggFn::kCount && agg.star) {
      result_row->push_back(Value::Int(static_cast<int64_t>(group.size())));
      continue;
    }
    // Locate the hidden projection column of this aggregate's attribute.
    size_t column = base;
    bool found = false;
    for (size_t i = 0; i < projection.size(); ++i) {
      if (projection[i].type_name == agg.ref.type_name &&
          projection[i].attr_name == agg.ref.attr_name) {
        column = base + i;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("aggregate column not projected: " +
                              agg.ref.ToString());
    }
    int64_t count = 0;
    double sum = 0;
    bool numeric_ok = true;
    std::optional<Value> best;  // MIN / MAX
    for (size_t row_index : group) {
      const auto& row = rows.rows[row_index];
      const Value& v = row[column];
      if (v.is_null()) continue;  // NULLs do not participate
      ++count;
      if (v.type() == AttrType::kInt || v.type() == AttrType::kDouble) {
        sum += v.NumericValue();
      } else {
        numeric_ok = false;
      }
      if (!best.has_value()) {
        best = v;
      } else {
        TCOB_ASSIGN_OR_RETURN(int cmp, v.Compare(*best));
        if ((agg.fn == AggFn::kMin && cmp < 0) ||
            (agg.fn == AggFn::kMax && cmp > 0)) {
          best = v;
        }
      }
    }
    switch (agg.fn) {
      case AggFn::kCount:
        result_row->push_back(Value::Int(count));
        break;
      case AggFn::kSum:
      case AggFn::kAvg: {
        if (!numeric_ok) {
          return Status::TypeError("SUM/AVG require a numeric attribute: " +
                                   agg.ref.ToString());
        }
        if (count == 0) {
          result_row->push_back(Value::Null(AttrType::kDouble));
        } else if (agg.fn == AggFn::kSum) {
          result_row->push_back(Value::Double(sum));
        } else {
          result_row->push_back(Value::Double(sum / count));
        }
        break;
      }
      case AggFn::kMin:
      case AggFn::kMax:
        result_row->push_back(best.has_value()
                                  ? *best
                                  : Value::Null(AttrType::kString));
        break;
    }
  }
  return Status::OK();
}

Result<MoleculeTypeDef> SelectExecutor::ResolveMoleculeType(
    const SelectStmt& stmt) const {
  if (stmt.inline_root.empty()) {
    TCOB_ASSIGN_OR_RETURN(const MoleculeTypeDef* named,
                          catalog_->GetMoleculeTypeByName(stmt.molecule_type));
    return *named;
  }
  // Ad-hoc definition: resolve the root and links, check connectedness.
  MoleculeTypeDef def;
  def.name = "<inline>";
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root,
                        catalog_->GetAtomTypeByName(stmt.inline_root));
  def.root_type = root->id;
  std::set<TypeId> reached = {root->id};
  for (const auto& [link_name, forward] : stmt.inline_edges) {
    TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                          catalog_->GetLinkTypeByName(link_name));
    TypeId source = forward ? link->from_type : link->to_type;
    TypeId target = forward ? link->to_type : link->from_type;
    if (reached.count(source) == 0) {
      return Status::InvalidArgument(
          "inline molecule is disconnected at link " + link_name);
    }
    reached.insert(target);
    def.edges.push_back(MoleculeEdge{link->id, forward});
  }
  return def;
}

Result<ResultSet> SelectExecutor::Explain(const SelectStmt& stmt) const {
  TCOB_ASSIGN_OR_RETURN(MoleculeTypeDef resolved, ResolveMoleculeType(stmt));
  RootAccessPath path = PlanRootAccess(stmt, *catalog_, resolved);
  ResultSet out;
  out.columns = {"PLAN"};
  out.rows.push_back({Value::String(path.description)});
  const char* mode = stmt.mode == TemporalMode::kAsOf
                         ? "time slice (VALID AT)"
                         : (stmt.mode == TemporalMode::kWindow
                                ? "window (VALID IN)"
                                : "history");
  out.rows.push_back({Value::String(std::string("temporal mode: ") + mode)});
  out.rows.push_back({Value::String(
      "molecule materialization: fixpoint over " +
      std::to_string(resolved.edges.size()) + " edge(s)" +
      (stmt.inline_root.empty() ? "" : " (inline definition)"))});
  if (!stmt.aggregates.empty()) {
    out.rows.push_back({Value::String(
        std::string("aggregation: ") + std::to_string(stmt.aggregates.size()) +
        " aggregate(s)" + (stmt.group_by_root ? ", grouped by root" : ""))});
  }
  return out;
}

namespace {

/// Applies the ORDER BY clause: stable sort by the named column.
Status ApplyOrderBy(const SelectStmt& stmt, ResultSet* out) {
  if (stmt.order_by.empty()) return Status::OK();
  size_t column = out->columns.size();
  for (size_t i = 0; i < out->columns.size(); ++i) {
    if (out->columns[i] == stmt.order_by) {
      column = i;
      break;
    }
  }
  if (column == out->columns.size()) {
    return Status::InvalidArgument(
        "ORDER BY column must appear in the result: " + stmt.order_by);
  }
  Status sort_error = Status::OK();
  std::stable_sort(out->rows.begin(), out->rows.end(),
                   [&](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
                     Result<int> cmp = a[column].Compare(b[column]);
                     if (!cmp.ok()) {
                       if (sort_error.ok()) sort_error = cmp.status();
                       return false;
                     }
                     return stmt.order_desc ? cmp.value() > 0
                                            : cmp.value() < 0;
                   });
  return sort_error;
}

/// Collects streamed rows into a ResultSet — the materialized surface.
class CollectingSink : public RowSink {
 public:
  explicit CollectingSink(ResultSet* out) : out_(out) {}
  Result<bool> Push(std::vector<Value> row) override {
    out_->rows.push_back(std::move(row));
    return true;
  }

 private:
  ResultSet* out_;
};

}  // namespace

Result<SelectPlan> SelectExecutor::Plan(const SelectStmt& stmt) const {
  TraceSpanScope span(rec_, TraceSpanId::kPlan);
  StopwatchUs plan_timer;
  SelectPlan plan;
  TCOB_ASSIGN_OR_RETURN(plan.resolved, ResolveMoleculeType(stmt));
  plan.aggregate = !stmt.aggregates.empty();
  plan.select_all = stmt.select_all && !plan.aggregate;
  plan.windowed = stmt.mode != TemporalMode::kAsOf;
  plan.projection = stmt.projection;
  if (plan.aggregate) {
    plan.projection.clear();
    for (const AggSpec& agg : stmt.aggregates) {
      if (agg.star) continue;
      bool dup = false;
      for (const AttrRef& ref : plan.projection) {
        dup = dup || (ref.type_name == agg.ref.type_name &&
                      ref.attr_name == agg.ref.attr_name);
      }
      if (!dup) plan.projection.push_back(agg.ref);
    }
  }

  plan.columns.push_back("ROOT");
  if (plan.windowed) {
    plan.columns.push_back("VALID_FROM");
    plan.columns.push_back("VALID_TO");
  }
  if (plan.select_all) {
    plan.columns.push_back("ATOM");
    plan.columns.push_back("TYPE");
    plan.columns.push_back("ATTRS");
  } else {
    for (const AttrRef& ref : plan.projection) {
      plan.columns.push_back(ref.ToString());
    }
  }

  if (stmt.mode == TemporalMode::kAsOf) {
    plan.path = PlanRootAccess(stmt, *catalog_, plan.resolved);
    if (plan.path.use_index && indexes_ != nullptr) {
      plan.message = plan.path.description;
    }
    if (trace_ != nullptr) trace_->plan = plan.path.description;
  } else {
    plan.window = stmt.mode == TemporalMode::kHistory ? Interval::All()
                                                      : stmt.window;
    if (stmt.mode == TemporalMode::kWindow && stmt.window_end_now) {
      plan.window.end = now_;
    }
    if (plan.window.empty()) {
      return Status::InvalidArgument("empty query window");
    }
    if (trace_ != nullptr && trace_->plan.empty()) {
      trace_->plan = "seq scan of root versions, incremental history sweep";
    }
  }
  if (trace_ != nullptr) trace_->plan_us += plan_timer.ElapsedUs();
  return plan;
}

Status SelectExecutor::Run(const SelectStmt& stmt, const SelectPlan& plan,
                           RowSink* sink) const {
  // Traced wrapper around EmitMolecule: accumulates emit_us and the
  // molecule/state/atom work counters. `state_valid` null = as-of row
  // shape, non-null = one constant state of a history.
  auto emit = [&](const Molecule& mol,
                  const Interval* state_valid) -> Result<bool> {
    if (ctx_ != nullptr) {
      Status governed = ctx_->Check();
      if (!governed.ok()) return governed;
    }
    if (trace_ == nullptr) {
      return EmitMolecule(stmt, plan, mol, state_valid, sink);
    }
    if (state_valid == nullptr) {
      ++trace_->molecules;
    } else {
      ++trace_->states;
    }
    trace_->atoms_visited += mol.atoms.size();
    StopwatchUs emit_timer;
    Result<bool> more = EmitMolecule(stmt, plan, mol, state_valid, sink);
    trace_->emit_us += emit_timer.ElapsedUs();
    return more;
  };

  if (stmt.mode == TemporalMode::kAsOf) {
    Timestamp t = stmt.at_now ? now_ : stmt.at;
    StopwatchUs mat_timer;
    if (plan.path.use_index && indexes_ != nullptr) {
      TCOB_ASSIGN_OR_RETURN(const AttrIndexDef* index,
                            catalog_->GetAttrIndex(plan.path.index));
      TCOB_ASSIGN_OR_RETURN(std::vector<AtomId> roots,
                            indexes_->LookupAsOf(*index, plan.path.range, t));
      // MoleculesAsOf routes the roots through a query-scoped cache (and
      // the thread pool, when the materializer has one); roots not valid
      // at t are skipped — the index is version-grained, so a listed
      // root should be valid, but stay defensive.
      TCOB_RETURN_NOT_OK(materializer_->MoleculesAsOf(
          plan.resolved, roots, t,
          [&](Molecule mol) -> Result<bool> { return emit(mol, nullptr); }));
    } else {
      TCOB_RETURN_NOT_OK(materializer_->AllMoleculesAsOf(
          plan.resolved, t,
          [&](Molecule mol) -> Result<bool> { return emit(mol, nullptr); }));
    }
    if (trace_ != nullptr) {
      // Emit ran inside the materializer's streaming loop: subtract it
      // out so the two spans partition the loop's wall time.
      trace_->materialize_us += mat_timer.ElapsedUs() - trace_->emit_us;
    }
    return Status::OK();
  }

  StopwatchUs mat_timer;
  TCOB_RETURN_NOT_OK(materializer_->AllHistories(
      plan.resolved, plan.window,
      [&](MoleculeHistory history) -> Result<bool> {
        if (trace_ != nullptr) ++trace_->molecules;
        for (const MoleculeState& state : history.states) {
          Interval clipped = state.valid.Intersect(plan.window);
          if (clipped.empty()) continue;
          TCOB_ASSIGN_OR_RETURN(bool more, emit(state.molecule, &clipped));
          if (!more) return false;
        }
        return true;
      }));
  if (trace_ != nullptr) {
    trace_->materialize_us += mat_timer.ElapsedUs() - trace_->emit_us;
  }
  return Status::OK();
}

Result<ResultSet> SelectExecutor::Execute(const SelectStmt& stmt) const {
  StopwatchUs exec_timer;
  TCOB_ASSIGN_OR_RETURN(SelectPlan plan, Plan(stmt));
  ResultSet out;
  out.columns = plan.columns;
  out.message = plan.message;
  CollectingSink sink(&out);
  {
    TraceSpanScope span(rec_, TraceSpanId::kExecute);
    TCOB_RETURN_NOT_OK(Run(stmt, plan, &sink));
  }

  if (plan.aggregate) {
    TraceSpanScope span(rec_, TraceSpanId::kAggregate);
    StopwatchUs agg_timer;
    TCOB_ASSIGN_OR_RETURN(
        out, FoldAggregates(stmt, plan.projection, plan.windowed, out));
    if (trace_ != nullptr) trace_->aggregate_us += agg_timer.ElapsedUs();
  }
  StopwatchUs sort_timer;
  if (!stmt.order_by.empty()) {
    TraceSpanScope span(rec_, TraceSpanId::kSort);
    TCOB_RETURN_NOT_OK(ApplyOrderBy(stmt, &out));
  }
  if (trace_ != nullptr) {
    trace_->sort_us += sort_timer.ElapsedUs();
    trace_->rows = out.rows.size();
    trace_->execute_us = exec_timer.ElapsedUs();
    trace_->temporal_mode = stmt.mode == TemporalMode::kAsOf
                                ? "as-of"
                                : (stmt.mode == TemporalMode::kWindow
                                       ? "window"
                                       : "history");
    trace_->cache = materializer_->cache_stats();
    trace_->worker_us = materializer_->last_worker_micros();
    trace_->parallelism =
        trace_->worker_us.empty() ? 1 : trace_->worker_us.size();
  }
  return out;
}

Status SelectExecutor::ExecuteStreaming(const SelectStmt& stmt,
                                        const SelectPlan& plan,
                                        RowSink* sink) const {
  TraceSpanScope span(rec_, TraceSpanId::kStream);
  StopwatchUs exec_timer;
  Status st = Run(stmt, plan, sink);
  if (trace_ != nullptr) {
    // Plan() ran earlier (at cursor open); execute_us spans both halves.
    trace_->execute_us = trace_->plan_us + exec_timer.ElapsedUs();
    trace_->temporal_mode = stmt.mode == TemporalMode::kAsOf
                                ? "as-of"
                                : (stmt.mode == TemporalMode::kWindow
                                       ? "window"
                                       : "history");
    trace_->cache = materializer_->cache_stats();
    trace_->worker_us = materializer_->last_worker_micros();
    trace_->parallelism =
        trace_->worker_us.empty() ? 1 : trace_->worker_us.size();
  }
  return st;
}

}  // namespace tcob
