#ifndef TCOB_QUERY_CURSOR_H_
#define TCOB_QUERY_CURSOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/resource_budget.h"
#include "common/result.h"
#include "query/executor.h"
#include "query/result_set.h"

namespace tcob {

/// Pull-based stream over one statement's result rows.
///
/// Obtained from Database::Query (which is "Open"); the caller pulls
/// rows with Next/NextBatch and releases the stream with Close. For
/// streamable SELECTs the rows are produced while the caller consumes —
/// first-row latency and buffered memory are independent of the result
/// size — and arrive in exactly the order the materialized API returns
/// them. Aggregates and ORDER BY (pipeline breakers) yield a cursor over
/// the pre-computed result instead.
///
/// Lifecycle rules (single-threaded per Database, like every other
/// call): drain or Close the cursor before executing the next statement
/// on its Database, and never let it outlive the Database. Close is
/// idempotent and implied by destruction; closing mid-stream is the
/// supported way to abandon a large result early.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Result column names; valid from open (before any row is pulled).
  virtual const std::vector<std::string>& columns() const = 0;

  /// Pulls the next row into `*row`. ok(true) = row filled, ok(false) =
  /// end of stream. A stream error is sticky: every pull after it
  /// returns the same status.
  virtual Result<bool> Next(std::vector<Value>* row) = 0;

  /// Pulls up to `max_rows` rows (clearing `*rows` first); returns how
  /// many arrived. Fewer than `max_rows` — including 0 — means the
  /// stream ended.
  virtual Result<size_t> NextBatch(size_t max_rows,
                                   std::vector<std::vector<Value>>* rows);

  /// Releases the stream (stopping production if still running).
  /// Idempotent; also run by the destructor.
  virtual void Close() = 0;

  /// Requests cancellation of the query behind this cursor. Unlike every
  /// other cursor call, Cancel is safe from any thread — it is how a
  /// second thread aborts a pull loop in progress: the next Next/
  /// NextBatch returns Status::Cancelled in bounded time. A no-op for
  /// cursors over already-materialized results.
  virtual void Cancel() {}

  /// Non-row payload (DML outcome, the index-path note).
  virtual const std::string& message() const = 0;
};

/// Cursor over an already-materialized ResultSet: DML/DDL results,
/// aggregate and ORDER BY queries.
class MaterializedCursor : public Cursor {
 public:
  explicit MaterializedCursor(ResultSet result)
      : result_(std::move(result)) {}

  const std::vector<std::string>& columns() const override {
    return result_.columns;
  }
  const std::string& message() const override { return result_.message; }
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override;

 private:
  ResultSet result_;
  size_t next_ = 0;
};

/// Counters a streaming cursor reports when it finishes.
struct StreamingCursorStats {
  /// Rows handed to the consumer.
  uint64_t rows_streamed = 0;
  /// High-water mark of rows buffered in the queue — the engine-level
  /// proof that streaming memory stays flat in the result size.
  uint64_t peak_buffered_rows = 0;
};

/// Cursor fed by a dedicated producer thread.
///
/// The producer runs the streaming executor, pushing row batches into a
/// bounded queue whose backpressure keeps it at most `queue_capacity_
/// rows` ahead of the consumer. A dedicated thread — never a pool worker
/// — because the executor may itself fan out onto the pool: a producer
/// occupying a pool slot could starve its own fan-out tasks (with a
/// one-worker pool it would deadlock outright).
class StreamingCursor : public Cursor {
 public:
  struct Options {
    /// Backpressure bound: the queue never holds more rows than this
    /// (one oversized batch excepted).
    size_t queue_capacity_rows = 1024;
    /// Rows per queue item; amortizes queue synchronization.
    size_t batch_rows = 64;
    /// The query's cancellation scope; Cancel() forwards into it so the
    /// producer's executor unwinds too. May be null.
    std::shared_ptr<QueryContext> context;
    /// Memory lease to charge buffered batches against (must outlive the
    /// cursor). May be null.
    BudgetLease* lease = nullptr;
  };

  /// Runs the query, pushing every result row into the sink; returning
  /// after the sink declines a row is a clean stop, not an error.
  using ProducerFn = std::function<Status(RowSink*)>;
  /// Runs exactly once, after the producer thread has been joined (at
  /// end-of-stream, on a stream error, or at Close) — the hook where the
  /// Database stamps the query trace and metrics.
  using FinalizeFn =
      std::function<void(const Status&, const StreamingCursorStats&)>;

  /// Starts the producer thread. `on_first_row` (may be null) fires when
  /// the first row is handed to the consumer — the first-row latency
  /// probe.
  StreamingCursor(std::vector<std::string> columns, std::string message,
                  ProducerFn producer, FinalizeFn finalize,
                  std::function<void()> on_first_row, Options options);
  /// Same, with default Options (an overload rather than a default
  /// argument: a nested struct's member initializers are not usable in a
  /// default argument inside the enclosing class).
  StreamingCursor(std::vector<std::string> columns, std::string message,
                  ProducerFn producer, FinalizeFn finalize,
                  std::function<void()> on_first_row);
  ~StreamingCursor() override;

  const std::vector<std::string>& columns() const override {
    return columns_;
  }
  const std::string& message() const override { return message_; }
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override;
  /// Thread-safe: cancels the context (unwinding the producer at its
  /// next batch boundary) and closes the consumer side of the queue
  /// (unblocking a producer stalled on backpressure). The next pull
  /// returns Status::Cancelled.
  void Cancel() override;

 private:
  class QueueSink;
  using RowBatch = std::vector<std::vector<Value>>;
  /// One queue entry: a row batch plus its budget accounting, carried
  /// alongside so the consumer can release exactly what the producer
  /// charged (the queue is FIFO, so they pair up naturally).
  struct QueueItem {
    RowBatch rows;
    uint64_t bytes = 0;
    bool charged = false;
  };

  /// Joins the producer and runs the finalize hook (once).
  void Finish();
  /// Returns the served buffer's bytes to the lease.
  void ReleaseBuffer();

  const std::vector<std::string> columns_;
  const std::string message_;
  const Options options_;
  BoundedQueue<QueueItem> queue_;
  std::thread producer_thread_;
  FinalizeFn finalize_;
  std::function<void()> on_first_row_;

  RowBatch buffer_;  // popped batch currently being served
  uint64_t buffer_bytes_ = 0;
  bool buffer_charged_ = false;
  size_t buffer_next_ = 0;
  uint64_t rows_delivered_ = 0;
  bool saw_first_row_ = false;
  bool end_ = false;       // no more rows will be served
  bool closed_ = false;    // Close() ran
  bool finalized_ = false;
  std::atomic<bool> cancelled_{false};
  Status final_status_ = Status::OK();  // sticky stream error
};

}  // namespace tcob

#endif  // TCOB_QUERY_CURSOR_H_
