#include "query/planner.h"

#include <vector>

namespace tcob {

namespace {

/// Collects the leaves of the top-level AND tree.
void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (const auto* binary = std::get_if<BinaryExpr>(&expr.node)) {
    if (binary->op == BinaryOp::kAnd) {
      CollectConjuncts(*binary->left, out);
      CollectConjuncts(*binary->right, out);
      return;
    }
  }
  out->push_back(&expr);
}

/// Mirrors a comparison operator (for literal-on-the-left conjuncts).
BinaryOp Mirror(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

/// Tries to read `expr` as `<type_name>.<attr> <cmp> <literal>`.
struct IndexableConjunct {
  std::string attr;
  BinaryOp op;
  Value literal = Value::Null(AttrType::kString);
};

bool MatchConjunct(const Expr& expr, const std::string& type_name,
                   IndexableConjunct* out) {
  const auto* binary = std::get_if<BinaryExpr>(&expr.node);
  if (binary == nullptr) return false;
  switch (binary->op) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  const auto* attr_left = std::get_if<AttrRefExpr>(&binary->left->node);
  const auto* lit_right = std::get_if<LiteralExpr>(&binary->right->node);
  if (attr_left != nullptr && lit_right != nullptr &&
      attr_left->ref.type_name == type_name) {
    out->attr = attr_left->ref.attr_name;
    out->op = binary->op;
    out->literal = lit_right->value;
    return true;
  }
  const auto* lit_left = std::get_if<LiteralExpr>(&binary->left->node);
  const auto* attr_right = std::get_if<AttrRefExpr>(&binary->right->node);
  if (lit_left != nullptr && attr_right != nullptr &&
      attr_right->ref.type_name == type_name) {
    out->attr = attr_right->ref.attr_name;
    out->op = Mirror(binary->op);
    out->literal = lit_left->value;
    return true;
  }
  return false;
}

/// Coerces an MQL literal to the indexed attribute's type so the
/// comparable encoding matches the index entries. Returns false when the
/// literal cannot represent the attribute type (index unusable).
bool CoerceLiteral(const Value& literal, AttrType target, Value* out) {
  if (literal.is_null()) return false;  // NULLs are not indexed
  if (literal.type() == target) {
    *out = literal;
    return true;
  }
  if (literal.type() == AttrType::kInt) {
    switch (target) {
      case AttrType::kDouble:
        *out = Value::Double(static_cast<double>(literal.AsInt()));
        return true;
      case AttrType::kTimestamp:
        *out = Value::Time(literal.AsInt());
        return true;
      case AttrType::kId:
        *out = Value::Id(static_cast<AtomId>(literal.AsInt()));
        return true;
      default:
        return false;
    }
  }
  return false;
}

}  // namespace

RootAccessPath PlanRootAccess(const SelectStmt& stmt, const Catalog& catalog,
                              const MoleculeTypeDef& molecule_type) {
  RootAccessPath path;
  Result<const AtomTypeDef*> root = catalog.GetAtomType(molecule_type.root_type);
  const std::string root_name = root.ok() ? root.value()->name : "?";
  path.description = "full scan of root type " + root_name;
  if (stmt.mode != TemporalMode::kAsOf || stmt.where == nullptr ||
      !root.ok()) {
    return path;
  }
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*stmt.where, &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    IndexableConjunct match;
    if (!MatchConjunct(*conjunct, root_name, &match)) continue;
    int attr_pos = root.value()->AttrIndex(match.attr);
    if (attr_pos < 0) continue;
    const AttrIndexDef* index = nullptr;
    for (const AttrIndexDef* def : catalog.AttrIndexesOf(root.value()->id)) {
      if (def->attr_pos == static_cast<uint32_t>(attr_pos)) {
        index = def;
        break;
      }
    }
    if (index == nullptr) continue;
    // Intersect the ranges of *all* conjuncts over this attribute
    // (">= 500 AND < 550" becomes one tight scan).
    ValueRange range;
    bool usable = false;
    for (const Expr* other : conjuncts) {
      IndexableConjunct bound;
      if (!MatchConjunct(*other, root_name, &bound) ||
          bound.attr != match.attr) {
        continue;
      }
      Value coerced = Value::Null(AttrType::kString);
      if (!CoerceLiteral(bound.literal,
                         root.value()->attributes[attr_pos].type, &coerced)) {
        continue;
      }
      usable = true;
      auto tighten_lower = [&](const Value& v, bool inclusive) {
        if (!range.lower.has_value() ||
            v.Compare(*range.lower).ValueOr(0) > 0 ||
            (v.Equals(*range.lower) && !inclusive)) {
          range.lower = v;
          range.lower_inclusive = inclusive;
        }
      };
      auto tighten_upper = [&](const Value& v, bool inclusive) {
        if (!range.upper.has_value() ||
            v.Compare(*range.upper).ValueOr(0) < 0 ||
            (v.Equals(*range.upper) && !inclusive)) {
          range.upper = v;
          range.upper_inclusive = inclusive;
        }
      };
      switch (bound.op) {
        case BinaryOp::kEq:
          tighten_lower(coerced, true);
          tighten_upper(coerced, true);
          break;
        case BinaryOp::kLt:
          tighten_upper(coerced, false);
          break;
        case BinaryOp::kLe:
          tighten_upper(coerced, true);
          break;
        case BinaryOp::kGt:
          tighten_lower(coerced, false);
          break;
        case BinaryOp::kGe:
          tighten_lower(coerced, true);
          break;
        default:
          break;
      }
    }
    if (!usable) continue;
    path.use_index = true;
    path.index = index->id;
    path.range = std::move(range);
    path.description = "index scan " + index->name + " on " + root_name +
                       "." + match.attr + " range " + path.range.ToString();
    return path;
  }
  return path;
}

}  // namespace tcob
