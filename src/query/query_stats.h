#ifndef TCOB_QUERY_QUERY_STATS_H_
#define TCOB_QUERY_QUERY_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mad/version_cache.h"
#include "query/result_set.h"
#include "storage/buffer_pool.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// The execution trace of one SELECT: per-operator wall time plus the
/// storage work it caused, attributed by counter deltas. Filled by the
/// Database around a traced execution and rendered by EXPLAIN ANALYZE.
///
/// Span model (nested, all wall-clock microseconds):
///   total_us
///   ├── parse_us        lexing + parsing the statement text
///   └── execute_us      the executor pipeline (both surfaces)
///       ├── plan_us         type resolution + root access planning
///       ├── materialize_us  molecule/history construction (store side)
///       ├── emit_us         row production from materialized states
///       ├── aggregate_us    FoldAggregates
///       └── sort_us         ApplyOrderBy
/// first_row_us is a marker inside total_us: statement start to the
/// first row reaching the consumer (cursor pull or Execute return).
struct QueryStats {
  std::string statement;      // original MQL text (empty for AST entry)
  std::string plan;           // root access path description
  std::string temporal_mode;  // "as-of" | "window" | "history"
  std::string strategy;       // storage strategy name
  uint64_t parallelism = 1;   // fan-out workers used (1 = serial)
  /// How the query ended: "ok" | "cancelled" | "deadline-exceeded" |
  /// "error".
  std::string disposition = "ok";
  /// Which execution surface produced the rows: "streaming" when a
  /// cursor pulled them through the bounded queue, "materialized" when
  /// the result was built eagerly (pipeline breakers, Execute).
  std::string surface = "materialized";

  double parse_us = 0;
  double plan_us = 0;
  double materialize_us = 0;
  double emit_us = 0;
  double aggregate_us = 0;
  double sort_us = 0;
  double execute_us = 0;
  double total_us = 0;
  /// Statement start to first row available to the consumer. On the
  /// streaming path this is flat in the result size; the materialized
  /// path (aggregates, ORDER BY) pays the whole execution first.
  double first_row_us = 0;

  uint64_t molecules = 0;      // molecules materialized (as-of) or swept
  uint64_t states = 0;         // constant states visited (windowed modes)
  uint64_t rows = 0;           // result rows produced
  uint64_t atoms_visited = 0;  // atom instances across all emitted states
  uint64_t rows_streamed = 0;  // rows handed to the consumer
  /// High-water mark of rows buffered between producer and consumer
  /// (streaming: the cursor queue's peak; materialized: the full result).
  uint64_t peak_buffered_rows = 0;

  /// Store round-trips this query caused (counter delta).
  StoreAccessStats store;
  /// Cold-tier work this query caused (counter delta; all zero when
  /// tiering is off).
  ColdTierAccessStats tiering;
  /// Version-cache behavior of this query's caches (exact, query-scoped).
  VersionCacheStats cache;
  /// Page traffic this query caused (counter delta).
  BufferPoolStats pool;
  /// Wall time each fan-out worker spent materializing (empty = serial).
  std::vector<double> worker_us;

  /// Peak bytes this query had charged against the memory budget at any
  /// one time (version-cache pins + buffered cursor batches).
  uint64_t peak_memory_bytes = 0;
  /// Bytes the global budget refused this query (0 = never over cap).
  uint64_t memory_overflow_bytes = 0;
  /// Wall time spent waiting at the admission gate before execution.
  double admission_wait_us = 0;

  uint64_t versions_scanned() const { return cache.versions_pinned; }

  /// Renders the trace as SECTION / METRIC / VALUE rows (the shape
  /// EXPLAIN ANALYZE returns).
  ResultSet ToResultSet() const;
};

}  // namespace tcob

#endif  // TCOB_QUERY_QUERY_STATS_H_
