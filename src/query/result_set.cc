#include "query/result_set.h"

#include <algorithm>

namespace tcob {

std::string ResultSet::ToString() const {
  if (columns.empty()) {
    return message.empty() ? std::string("OK") : message;
  }
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  for (const auto& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      std::string s = row[c].ToString();
      if (c < widths.size()) widths[c] = std::max(widths[c], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& line) {
    out += "|";
    for (size_t c = 0; c < columns.size(); ++c) {
      out += " ";
      const std::string& s = c < line.size() ? line[c] : "";
      out += s;
      out.append(widths[c] - s.size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < columns.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";
  out += sep;
  append_row(columns);
  out += sep;
  for (const auto& line : cells) append_row(line);
  out += sep;
  out += std::to_string(rows.size()) + " row(s)";
  if (!message.empty()) out += "  -- " + message;
  out += "\n";
  return out;
}

}  // namespace tcob
