#ifndef TCOB_QUERY_EXECUTOR_H_
#define TCOB_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/trace_ring.h"
#include "index/attr_index.h"
#include "mad/materializer.h"
#include "query/ast.h"
#include "query/planner.h"
#include "query/query_stats.h"
#include "query/result_set.h"

namespace tcob {

/// Destination of streamed result rows. The executor produces rows one
/// at a time into a sink; the materialized path collects them into a
/// ResultSet, the cursor path hands them to a bounded queue.
class RowSink {
 public:
  virtual ~RowSink() = default;
  /// Accepts one row. Returning false stops the query cleanly (the
  /// consumer has seen enough — a closed cursor); it is not an error.
  virtual Result<bool> Push(std::vector<Value> row) = 0;
};

/// Everything about a SELECT that is resolvable before the first row:
/// the molecule type, temporal window, root access path, and the result
/// column shape. Computed once by SelectExecutor::Plan so a streaming
/// caller can expose the columns while the rows are still being made.
struct SelectPlan {
  MoleculeTypeDef resolved;
  /// Root access (as-of statements only; windowed modes always scan).
  RootAccessPath path;
  /// The effective query window (windowed modes; validated non-empty).
  Interval window;
  bool select_all = false;
  bool aggregate = false;
  bool windowed = false;
  /// Effective projection: the explicit list, or the distinct attributes
  /// referenced by aggregates (their hidden projection).
  std::vector<AttrRef> projection;
  /// Columns of the streamed rows (pre-aggregation shape).
  std::vector<std::string> columns;
  /// ResultSet message (the index-path note, when one is used).
  std::string message;
};

/// Executes SELECT statements against the molecule engine.
///
/// Row shapes:
///  * `SELECT ALL`: one row per atom of each qualifying molecule —
///    columns ROOT, ATOM, TYPE, ATTRS (+ VALID_FROM/VALID_TO of the
///    molecule state for window/history queries).
///  * projection list: one row per qualifying binding of the projected
///    atom types — columns ROOT, <Type.attr>... (+ the state interval for
///    window/history queries).
///
/// Temporal semantics:
///  * `VALID AT t` materializes each molecule as of t,
///  * `VALID IN [a,b)` / `HISTORY` enumerate each molecule's maximal
///    constant states overlapping the window; the WHERE predicate is
///    evaluated per state.
///
/// Two execution surfaces share one pipeline: Execute materializes the
/// full ResultSet (and is the only path for aggregates and ORDER BY,
/// which must see every row), while Plan + ExecuteStreaming push rows
/// into a RowSink as they are produced — the cursor path, whose rows are
/// byte-identical to Execute's for every streamable statement.
class SelectExecutor {
 public:
  /// `indexes` may be null (no secondary-index access paths then).
  SelectExecutor(const Catalog* catalog, const Materializer* materializer,
                 Timestamp now, const AttrIndexManager* indexes = nullptr)
      : catalog_(catalog),
        materializer_(materializer),
        now_(now),
        indexes_(indexes) {}

  Result<ResultSet> Execute(const SelectStmt& stmt) const;

  /// True when the statement's rows can be streamed in production order:
  /// no aggregates and no ORDER BY (both are pipeline breakers that need
  /// the whole row set before the first output row).
  static bool CanStream(const SelectStmt& stmt) {
    return stmt.aggregates.empty() && stmt.order_by.empty();
  }

  /// Resolves types, plans root access and fixes the column shape —
  /// everything that can fail or be reported before rows flow.
  Result<SelectPlan> Plan(const SelectStmt& stmt) const;

  /// Streams the rows of a streamable statement (CanStream) into `sink`,
  /// in exactly the order Execute would return them. A sink that returns
  /// false stops execution early with OK status.
  Status ExecuteStreaming(const SelectStmt& stmt, const SelectPlan& plan,
                          RowSink* sink) const;

  /// EXPLAIN: reports the access path and temporal mode without
  /// executing.
  Result<ResultSet> Explain(const SelectStmt& stmt) const;

  /// Attaches a trace that execution fills with per-operator timings and
  /// work counters (EXPLAIN ANALYZE). The trace's cache stats report the
  /// materializer's accumulated numbers, so callers wanting per-query
  /// attribution pass a freshly constructed (or reset) materializer.
  /// Null (the default) disables tracing; the fast path then pays only a
  /// pointer test per span. A streaming execution writes the trace from
  /// the producing thread; readers must synchronize with its completion.
  void set_trace(QueryStats* trace) { trace_ = trace; }

  /// Attaches the query's cancellation scope: the row pipeline checks it
  /// per emitted molecule/state and unwinds with its status. Null (the
  /// default) disables the checks. The materializer has its own
  /// governance hook (set separately) for the loops below this layer.
  void set_context(const QueryContext* ctx) { ctx_ = ctx; }

  /// Attaches the flight recorder: execution wraps its operator phases
  /// (plan, execute, aggregate, sort, stream) in trace spans. Null (the
  /// default) records nothing.
  void set_recorder(TraceRecorder* rec) { rec_ = rec; }

 private:
  /// Shared pipeline of both surfaces: drives the materializer operators
  /// and emits rows into `sink`. Fills the trace's plan/materialize/emit
  /// spans and work counters.
  Status Run(const SelectStmt& stmt, const SelectPlan& plan,
             RowSink* sink) const;

  /// Emits the rows of one molecule state into `sink`; false = the sink
  /// has stopped the query.
  Result<bool> EmitMolecule(const SelectStmt& stmt, const SelectPlan& plan,
                            const Molecule& molecule,
                            const Interval* state_valid, RowSink* sink) const;

  /// Folds the hidden-projection rows of an aggregate query into the
  /// single result row.
  Result<ResultSet> FoldAggregates(const SelectStmt& stmt,
                                   const std::vector<AttrRef>& projection,
                                   bool windowed,
                                   const ResultSet& rows) const;

  /// Folds one aggregation group (row indices into `rows`) into
  /// `result_row`.
  Status FoldGroup(const SelectStmt& stmt,
                   const std::vector<AttrRef>& projection, size_t base,
                   const ResultSet& rows, const std::vector<size_t>& group,
                   std::vector<Value>* result_row) const;

  /// Renders "name=value, ..." for an atom's attributes.
  Result<std::string> RenderAttrs(const AtomVersion& v) const;

  /// Resolves the named molecule type, or builds the ad-hoc definition
  /// of a "FROM <Root> VIA ..." clause (validating connectedness).
  Result<MoleculeTypeDef> ResolveMoleculeType(const SelectStmt& stmt) const;

  const Catalog* catalog_;
  const Materializer* materializer_;
  Timestamp now_;
  const AttrIndexManager* indexes_;
  QueryStats* trace_ = nullptr;
  const QueryContext* ctx_ = nullptr;
  TraceRecorder* rec_ = nullptr;
};

}  // namespace tcob

#endif  // TCOB_QUERY_EXECUTOR_H_
