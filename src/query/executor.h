#ifndef TCOB_QUERY_EXECUTOR_H_
#define TCOB_QUERY_EXECUTOR_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "index/attr_index.h"
#include "mad/materializer.h"
#include "query/ast.h"
#include "query/query_stats.h"
#include "query/result_set.h"

namespace tcob {

/// Executes SELECT statements against the molecule engine.
///
/// Row shapes:
///  * `SELECT ALL`: one row per atom of each qualifying molecule —
///    columns ROOT, ATOM, TYPE, ATTRS (+ VALID_FROM/VALID_TO of the
///    molecule state for window/history queries).
///  * projection list: one row per qualifying binding of the projected
///    atom types — columns ROOT, <Type.attr>... (+ the state interval for
///    window/history queries).
///
/// Temporal semantics:
///  * `VALID AT t` materializes each molecule as of t,
///  * `VALID IN [a,b)` / `HISTORY` enumerate each molecule's maximal
///    constant states overlapping the window; the WHERE predicate is
///    evaluated per state.
class SelectExecutor {
 public:
  /// `indexes` may be null (no secondary-index access paths then).
  SelectExecutor(const Catalog* catalog, const Materializer* materializer,
                 Timestamp now, const AttrIndexManager* indexes = nullptr)
      : catalog_(catalog),
        materializer_(materializer),
        now_(now),
        indexes_(indexes) {}

  Result<ResultSet> Execute(const SelectStmt& stmt) const;

  /// EXPLAIN: reports the access path and temporal mode without
  /// executing.
  Result<ResultSet> Explain(const SelectStmt& stmt) const;

  /// Attaches a trace that Execute fills with per-operator timings and
  /// work counters (EXPLAIN ANALYZE). The trace's cache stats report the
  /// materializer's accumulated numbers, so callers wanting per-query
  /// attribution pass a freshly constructed (or reset) materializer.
  /// Null (the default) disables tracing; the fast path then pays only a
  /// pointer test per span.
  void set_trace(QueryStats* trace) { trace_ = trace; }

 private:
  /// Emits the rows of one molecule state into `out`. `select_all` and
  /// `projection` are the *effective* row shape (aggregate queries run
  /// with their referenced attributes as a hidden projection).
  Status EmitMolecule(const SelectStmt& stmt, bool select_all,
                      const std::vector<AttrRef>& projection,
                      const Molecule& molecule, const Interval* state_valid,
                      ResultSet* out) const;

  /// Folds the hidden-projection rows of an aggregate query into the
  /// single result row.
  Result<ResultSet> FoldAggregates(const SelectStmt& stmt,
                                   const std::vector<AttrRef>& projection,
                                   bool windowed,
                                   const ResultSet& rows) const;

  /// Folds one aggregation group (row indices into `rows`) into
  /// `result_row`.
  Status FoldGroup(const SelectStmt& stmt,
                   const std::vector<AttrRef>& projection, size_t base,
                   const ResultSet& rows, const std::vector<size_t>& group,
                   std::vector<Value>* result_row) const;

  /// Renders "name=value, ..." for an atom's attributes.
  Result<std::string> RenderAttrs(const AtomVersion& v) const;

  /// Resolves the named molecule type, or builds the ad-hoc definition
  /// of a "FROM <Root> VIA ..." clause (validating connectedness).
  Result<MoleculeTypeDef> ResolveMoleculeType(const SelectStmt& stmt) const;

  const Catalog* catalog_;
  const Materializer* materializer_;
  Timestamp now_;
  const AttrIndexManager* indexes_;
  QueryStats* trace_ = nullptr;
};

}  // namespace tcob

#endif  // TCOB_QUERY_EXECUTOR_H_
