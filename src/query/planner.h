#ifndef TCOB_QUERY_PLANNER_H_
#define TCOB_QUERY_PLANNER_H_

#include <string>

#include "catalog/catalog.h"
#include "index/attr_index.h"
#include "query/ast.h"

namespace tcob {

/// How the executor finds the root atoms of a SELECT.
struct RootAccessPath {
  bool use_index = false;
  IndexId index = kInvalidTypeId;
  ValueRange range;
  /// Human-readable plan line (EXPLAIN output).
  std::string description;
};

/// Chooses the root access path for `stmt`.
///
/// An attribute index is used when all of the following hold: the query
/// is a time slice (VALID AT), the WHERE clause contains a top-level
/// AND-conjunct of the form `<RootType>.<attr> <cmp> <literal>` (either
/// operand order), and that attribute is indexed. The index acts as a
/// pre-filter: the full predicate is still evaluated on each molecule.
/// Window/history queries always scan (their qualifying states span
/// many instants).
RootAccessPath PlanRootAccess(const SelectStmt& stmt, const Catalog& catalog,
                              const MoleculeTypeDef& molecule_type);

}  // namespace tcob

#endif  // TCOB_QUERY_PLANNER_H_
