#ifndef TCOB_QUERY_RESULT_SET_H_
#define TCOB_QUERY_RESULT_SET_H_

#include <string>
#include <vector>

#include "record/value.h"

namespace tcob {

/// Tabular result of one statement.
///
/// SELECTs fill columns/rows; DDL and DML fill `message` (and DML sets
/// `inserted_id` for INSERT ATOM).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  std::string message;
  AtomId inserted_id = kInvalidAtomId;

  size_t RowCount() const { return rows.size(); }

  /// Renders an aligned ASCII table (or the message for non-queries).
  std::string ToString() const;
};

}  // namespace tcob

#endif  // TCOB_QUERY_RESULT_SET_H_
