#include "db/dump.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

#include "common/coding.h"
#include "db/database.h"

namespace tcob {

namespace {

constexpr uint32_t kDumpMagic = 0x54434244;  // "TCBD"
constexpr uint32_t kDumpVersion = 1;

Status WriteAll(const std::string& path, const std::string& bytes) {
  std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (!f) return Status::IOError("open " + tmp);
  size_t n = fwrite(bytes.data(), 1, bytes.size(), f);
  if (n != bytes.size() || fflush(f) != 0) {
    fclose(f);
    return Status::IOError("write " + tmp);
  }
  fclose(f);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp);
  }
  return Status::OK();
}

Result<std::string> ReadAll(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (!f) return Status::NotFound("dump file " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  fclose(f);
  return bytes;
}

}  // namespace

Result<std::string> Database::Dump() {
  std::string out;
  PutFixed32(&out, kDumpMagic);
  PutFixed32(&out, kDumpVersion);
  PutLengthPrefixed(&out, catalog_.Serialize());
  PutVarsint64(&out, now_);

  // Atom versions, grouped by type. Store scan order is a physical
  // artifact (heap order, cluster order, ...), so records are sorted by
  // (atom id, valid begin) before encoding: the same logical content
  // dumps to the same bytes under every storage strategy.
  std::vector<const AtomTypeDef*> types = catalog_.AtomTypes();
  PutVarint32(&out, static_cast<uint32_t>(types.size()));
  for (const AtomTypeDef* type : types) {
    PutVarint32(&out, type->id);
    std::vector<AttrType> schema = type->AttrTypes();
    std::vector<AtomVersion> collected;
    TCOB_RETURN_NOT_OK(store_->ScanVersions(
        *type, Interval::All(), [&](const AtomVersion& v) -> Result<bool> {
          collected.push_back(v);
          return true;
        }));
    std::sort(collected.begin(), collected.end(),
              [](const AtomVersion& a, const AtomVersion& b) {
                if (a.id != b.id) return a.id < b.id;
                return a.valid.begin < b.valid.begin;
              });
    PutVarint64(&out, collected.size());
    for (const AtomVersion& v : collected) {
      TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, v, &out));
    }
  }

  // Link intervals, grouped by link type, sorted by (from, to, begin).
  std::vector<const LinkTypeDef*> links = catalog_.LinkTypes();
  PutVarint32(&out, static_cast<uint32_t>(links.size()));
  for (const LinkTypeDef* link : links) {
    PutVarint32(&out, link->id);
    std::vector<std::tuple<AtomId, AtomId, Interval>> collected;
    TCOB_RETURN_NOT_OK(links_->ForEachLink(
        *link,
        [&](AtomId from, AtomId to, const Interval& valid) -> Result<bool> {
          collected.emplace_back(from, to, valid);
          return true;
        }));
    std::sort(collected.begin(), collected.end(),
              [](const auto& a, const auto& b) {
                if (std::get<0>(a) != std::get<0>(b)) {
                  return std::get<0>(a) < std::get<0>(b);
                }
                if (std::get<1>(a) != std::get<1>(b)) {
                  return std::get<1>(a) < std::get<1>(b);
                }
                return std::get<2>(a) < std::get<2>(b);
              });
    PutVarint64(&out, collected.size());
    for (const auto& [from, to, valid] : collected) {
      PutVarint64(&out, from);
      PutVarint64(&out, to);
      PutVarsint64(&out, valid.begin);
      PutVarsint64(&out, valid.end);
    }
  }
  return out;
}

Status ExportDump(Database* db, const std::string& path) {
  TCOB_ASSIGN_OR_RETURN(std::string bytes, db->Dump());
  return WriteAll(path, bytes);
}

Status ImportDump(Database* db, const std::string& path) {
  if (!db->catalog_.AtomTypes().empty()) {
    return Status::InvalidArgument(
        "import target must be an empty database");
  }
  TCOB_ASSIGN_OR_RETURN(std::string bytes, ReadAll(path));
  Slice in(bytes);
  uint32_t magic, version;
  TCOB_RETURN_NOT_OK(GetFixed32(&in, &magic));
  if (magic != kDumpMagic) return Status::Corruption("dump magic");
  TCOB_RETURN_NOT_OK(GetFixed32(&in, &version));
  if (version != kDumpVersion) {
    return Status::Corruption("dump version " + std::to_string(version));
  }
  Slice catalog_bytes;
  TCOB_RETURN_NOT_OK(GetLengthPrefixed(&in, &catalog_bytes));
  TCOB_ASSIGN_OR_RETURN(db->catalog_, Catalog::Deserialize(catalog_bytes));
  TCOB_RETURN_NOT_OK(
      db->catalog_.SaveToFile(db->env_, db->dir_ + "/catalog.tcob"));
  Timestamp clock;
  TCOB_RETURN_NOT_OK(GetVarsint64(&in, &clock));

  // Atom histories: regroup per atom, sort, and replay as logical ops so
  // WAL, indexes and watermarks are all maintained.
  uint32_t n_types;
  TCOB_RETURN_NOT_OK(GetVarint32(&in, &n_types));
  for (uint32_t s = 0; s < n_types; ++s) {
    uint32_t type_id;
    TCOB_RETURN_NOT_OK(GetVarint32(&in, &type_id));
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                          db->catalog_.GetAtomType(type_id));
    std::vector<AttrType> schema = type->AttrTypes();
    uint64_t count;
    TCOB_RETURN_NOT_OK(GetVarint64(&in, &count));
    std::map<AtomId, std::vector<AtomVersion>> by_atom;
    for (uint64_t i = 0; i < count; ++i) {
      TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &in));
      by_atom[v.id].push_back(std::move(v));
    }
    for (auto& [id, versions] : by_atom) {
      std::sort(versions.begin(), versions.end(),
                [](const AtomVersion& a, const AtomVersion& b) {
                  return a.valid.begin < b.valid.begin;
                });
      Timestamp prev_end = kMinTimestamp;
      for (size_t i = 0; i < versions.size(); ++i) {
        const AtomVersion& v = versions[i];
        WalOp op;
        op.atom_id = id;
        op.atom_type = type_id;
        op.attrs = v.attrs;
        if (i == 0 || v.valid.begin != prev_end) {
          if (i > 0) {
            // Gap: the previous version was closed by a delete.
            WalOp del;
            del.type = WalOpType::kDeleteAtom;
            del.atom_id = id;
            del.atom_type = type_id;
            del.valid_from = prev_end;
            TCOB_RETURN_NOT_OK(db->LogAndApply(del));
          }
          op.type = WalOpType::kInsertAtom;
        } else {
          op.type = WalOpType::kUpdateAtom;
        }
        op.valid_from = v.valid.begin;
        TCOB_RETURN_NOT_OK(db->LogAndApply(op));
        prev_end = v.valid.end;
      }
      if (!versions.back().valid.open_ended()) {
        WalOp del;
        del.type = WalOpType::kDeleteAtom;
        del.atom_id = id;
        del.atom_type = type_id;
        del.valid_from = versions.back().valid.end;
        TCOB_RETURN_NOT_OK(db->LogAndApply(del));
      }
    }
  }

  // Link intervals, per pair in time order.
  uint32_t n_links;
  TCOB_RETURN_NOT_OK(GetVarint32(&in, &n_links));
  for (uint32_t s = 0; s < n_links; ++s) {
    uint32_t link_id;
    TCOB_RETURN_NOT_OK(GetVarint32(&in, &link_id));
    uint64_t count;
    TCOB_RETURN_NOT_OK(GetVarint64(&in, &count));
    std::map<std::pair<AtomId, AtomId>, std::vector<Interval>> by_pair;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t from, to;
      Interval valid;
      TCOB_RETURN_NOT_OK(GetVarint64(&in, &from));
      TCOB_RETURN_NOT_OK(GetVarint64(&in, &to));
      TCOB_RETURN_NOT_OK(GetVarsint64(&in, &valid.begin));
      TCOB_RETURN_NOT_OK(GetVarsint64(&in, &valid.end));
      by_pair[{from, to}].push_back(valid);
    }
    for (auto& [pair, intervals] : by_pair) {
      std::sort(intervals.begin(), intervals.end());
      for (const Interval& valid : intervals) {
        WalOp op;
        op.type = WalOpType::kConnect;
        op.link_type = link_id;
        op.from_id = pair.first;
        op.to_id = pair.second;
        op.valid_from = valid.begin;
        TCOB_RETURN_NOT_OK(db->LogAndApply(op));
        if (!valid.open_ended()) {
          op.type = WalOpType::kDisconnect;
          op.valid_from = valid.end;
          TCOB_RETURN_NOT_OK(db->LogAndApply(op));
        }
      }
    }
  }

  db->now_ = clock;
  return db->Checkpoint();
}

}  // namespace tcob
