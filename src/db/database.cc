#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/coding.h"
#include "common/logging.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/parser.h"
#include "wal/log_record.h"

namespace tcob {

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const DatabaseOptions& options) {
  std::unique_ptr<Database> db(new Database(dir, options));
  TCOB_RETURN_NOT_OK(db->Init());
  return db;
}

Database::~Database() {
  Status s = Flush();
  if (!s.ok()) {
    TCOB_LOG(kError) << "flush on close failed: " << s.ToString();
  }
  s = SaveClock();
  if (!s.ok()) {
    TCOB_LOG(kError) << "clock save on close failed: " << s.ToString();
  }
}

Status Database::Init() {
  TCOB_ASSIGN_OR_RETURN(disk_, DiskManager::Open(dir_));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options_.buffer_pool_pages);
  size_t workers = options_.parallelism;
  if (workers == 0) {
    workers = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (workers > 1) {
    query_pool_ = std::make_unique<ThreadPool>(workers);
  }
  Result<Catalog> loaded = Catalog::LoadFromFile(dir_ + "/catalog.tcob");
  if (loaded.ok()) {
    catalog_ = std::move(loaded).value();
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();
  }
  store_ = MakeTemporalStore(options_.strategy, pool_.get(),
                             std::string(StorageStrategyName(
                                 options_.strategy)),
                             options_.store);
  links_ = std::make_unique<LinkStore>(pool_.get(), "links");
  attr_indexes_ = std::make_unique<AttrIndexManager>(pool_.get(), &catalog_);
  TCOB_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(dir_ + "/wal.log"));
  TCOB_RETURN_NOT_OK(LoadClock());
  return Recover();
}

Status Database::Recover() {
  auto schema_lookup =
      [this](TypeId type) -> Result<std::vector<AttrType>> {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def, catalog_.GetAtomType(type));
    return def->AttrTypes();
  };
  uint64_t replayed = 0;
  Status replay = wal_->ReadAll([&](const Slice& payload) -> Result<bool> {
    TCOB_ASSIGN_OR_RETURN(WalOp op, WalOp::Decode(payload, schema_lookup));
    if (op.type == WalOpType::kCommit ||
        op.type == WalOpType::kCheckpoint) {
      return true;
    }
    TCOB_RETURN_NOT_OK(ApplyOp(op));
    ObserveTimestamp(op.valid_from);
    ++replayed;
    return true;
  });
  TCOB_RETURN_NOT_OK(replay);
  if (replayed > 0) {
    TCOB_LOG(kInfo) << "recovered " << replayed << " WAL operations";
  }
  return Status::OK();
}

Status Database::ApplyOp(const WalOp& op) {
  switch (op.type) {
    case WalOpType::kInsertAtom: {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                            catalog_.GetAtomType(op.atom_type));
      catalog_.AdvanceAtomIdWatermark(op.atom_id + 1);
      TCOB_RETURN_NOT_OK(
          store_->Insert(*type, op.atom_id, op.attrs, op.valid_from));
      if (attr_indexes_->HasIndexes(type->id)) {
        TCOB_RETURN_NOT_OK(attr_indexes_->OnInsert(*type, op.atom_id,
                                                   op.attrs, op.valid_from));
      }
      return Status::OK();
    }
    case WalOpType::kUpdateAtom: {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                            catalog_.GetAtomType(op.atom_type));
      // Capture the version being closed before the store mutates it
      // (index maintenance needs its value and begin; under WAL replay
      // the lookup still finds it because it is already closed at
      // valid_from).
      std::optional<AtomVersion> old_version;
      if (attr_indexes_->HasIndexes(type->id)) {
        TCOB_ASSIGN_OR_RETURN(
            old_version,
            store_->GetAsOf(*type, op.atom_id, op.valid_from - 1));
      }
      TCOB_RETURN_NOT_OK(
          store_->Update(*type, op.atom_id, op.attrs, op.valid_from));
      if (old_version.has_value()) {
        TCOB_RETURN_NOT_OK(attr_indexes_->OnUpdate(
            *type, op.atom_id, *old_version, op.attrs, op.valid_from));
      }
      return Status::OK();
    }
    case WalOpType::kDeleteAtom: {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                            catalog_.GetAtomType(op.atom_type));
      std::optional<AtomVersion> old_version;
      if (attr_indexes_->HasIndexes(type->id)) {
        TCOB_ASSIGN_OR_RETURN(
            old_version,
            store_->GetAsOf(*type, op.atom_id, op.valid_from - 1));
      }
      TCOB_RETURN_NOT_OK(store_->Delete(*type, op.atom_id, op.valid_from));
      if (old_version.has_value()) {
        TCOB_RETURN_NOT_OK(attr_indexes_->OnDelete(*type, op.atom_id,
                                                   *old_version,
                                                   op.valid_from));
      }
      return Status::OK();
    }
    case WalOpType::kConnect: {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_.GetLinkType(op.link_type));
      return links_->Connect(*link, op.from_id, op.to_id, op.valid_from);
    }
    case WalOpType::kDisconnect: {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_.GetLinkType(op.link_type));
      return links_->Disconnect(*link, op.from_id, op.to_id, op.valid_from);
    }
    case WalOpType::kCommit:
    case WalOpType::kCheckpoint:
      return Status::OK();
  }
  return Status::Internal("unhandled wal op");
}

Status Database::LogAndApply(const WalOp& op) {
  std::vector<AttrType> schema;
  if (op.type == WalOpType::kInsertAtom ||
      op.type == WalOpType::kUpdateAtom) {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                          catalog_.GetAtomType(op.atom_type));
    schema = def->AttrTypes();
  }
  std::string payload;
  TCOB_RETURN_NOT_OK(op.Encode(schema, &payload));
  TCOB_RETURN_NOT_OK(wal_->Append(payload));
  if (options_.sync_wal) TCOB_RETURN_NOT_OK(wal_->Sync());
  Status applied = ApplyOp(op);
  if (applied.ok()) ObserveTimestamp(op.valid_from);
  return applied;
}

// ---- transactions ----

Transaction Database::Begin() { return Transaction(this, next_txn_id_++); }

Status Database::CommitOps(uint64_t txn_id, const std::vector<WalOp>& ops) {
  // Phase 1: log everything, ending with the commit record.
  for (const WalOp& op : ops) {
    std::vector<AttrType> schema;
    if (op.type == WalOpType::kInsertAtom ||
        op.type == WalOpType::kUpdateAtom) {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                            catalog_.GetAtomType(op.atom_type));
      schema = def->AttrTypes();
    }
    std::string payload;
    TCOB_RETURN_NOT_OK(op.Encode(schema, &payload));
    TCOB_RETURN_NOT_OK(wal_->Append(payload));
  }
  WalOp commit;
  commit.type = WalOpType::kCommit;
  commit.txn_id = txn_id;
  std::string payload;
  TCOB_RETURN_NOT_OK(commit.Encode({}, &payload));
  TCOB_RETURN_NOT_OK(wal_->Append(payload));
  if (options_.sync_wal) TCOB_RETURN_NOT_OK(wal_->Sync());
  // Phase 2: apply. Validation at buffering time plus single-threaded
  // execution guarantee success; a failure here is an internal bug (the
  // WAL already has the operations, so recovery would reapply them).
  for (const WalOp& op : ops) {
    Status applied = ApplyOp(op);
    if (!applied.ok()) {
      return Status::Internal("transaction apply failed after logging: " +
                              applied.ToString());
    }
    ObserveTimestamp(op.valid_from);
  }
  return Status::OK();
}

// ---- DDL ----

Result<TypeId> Database::CreateAtomType(const std::string& name,
                                        std::vector<AttributeDef> attributes) {
  TCOB_ASSIGN_OR_RETURN(TypeId id,
                        catalog_.CreateAtomType(name, std::move(attributes)));
  TCOB_RETURN_NOT_OK(catalog_.SaveToFile(dir_ + "/catalog.tcob"));
  return id;
}

Result<LinkTypeId> Database::CreateLinkType(const std::string& name,
                                            const std::string& from_type,
                                            const std::string& to_type) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* from,
                        catalog_.GetAtomTypeByName(from_type));
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* to,
                        catalog_.GetAtomTypeByName(to_type));
  TCOB_ASSIGN_OR_RETURN(LinkTypeId id,
                        catalog_.CreateLinkType(name, from->id, to->id));
  TCOB_RETURN_NOT_OK(catalog_.SaveToFile(dir_ + "/catalog.tcob"));
  return id;
}

Result<MoleculeTypeId> Database::CreateMoleculeType(
    const std::string& name, const std::string& root_type,
    const std::vector<std::pair<std::string, bool>>& edges) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root,
                        catalog_.GetAtomTypeByName(root_type));
  std::vector<MoleculeEdge> resolved;
  for (const auto& [link_name, forward] : edges) {
    TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                          catalog_.GetLinkTypeByName(link_name));
    resolved.push_back(MoleculeEdge{link->id, forward});
  }
  TCOB_ASSIGN_OR_RETURN(
      MoleculeTypeId id,
      catalog_.CreateMoleculeType(name, root->id, std::move(resolved)));
  TCOB_RETURN_NOT_OK(catalog_.SaveToFile(dir_ + "/catalog.tcob"));
  return id;
}

Result<IndexId> Database::CreateAttrIndex(const std::string& name,
                                          const std::string& type_name,
                                          const std::string& attr_name) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(IndexId id,
                        catalog_.CreateAttrIndex(name, type->id, attr_name));
  TCOB_RETURN_NOT_OK(catalog_.SaveToFile(dir_ + "/catalog.tcob"));
  TCOB_ASSIGN_OR_RETURN(const AttrIndexDef* def, catalog_.GetAttrIndex(id));
  TCOB_RETURN_NOT_OK(attr_indexes_->Backfill(*def, *type, *store_));
  return id;
}

// ---- value handling ----

Result<Value> Database::Coerce(const Value& v, AttrType target) {
  if (v.is_null()) return Value::Null(target);
  if (v.type() == target) return v;
  if (v.type() == AttrType::kInt) {
    switch (target) {
      case AttrType::kDouble:
        return Value::Double(static_cast<double>(v.AsInt()));
      case AttrType::kTimestamp:
        return Value::Time(v.AsInt());
      case AttrType::kId:
        return Value::Id(static_cast<AtomId>(v.AsInt()));
      default:
        break;
    }
  }
  return Status::TypeError(std::string("cannot assign ") +
                           AttrTypeName(v.type()) + " to " +
                           AttrTypeName(target));
}

Result<std::vector<Value>> Database::ResolveAssignmentsFor(
    const AtomTypeDef& type,
    const std::vector<std::pair<std::string, Value>>& assignments,
    const std::vector<Value>* base) {
  std::vector<Value> out;
  out.reserve(type.attributes.size());
  if (base != nullptr) {
    out = *base;
  } else {
    for (const AttributeDef& attr : type.attributes) {
      out.push_back(Value::Null(attr.type));
    }
  }
  for (const auto& [name, value] : assignments) {
    int idx = type.AttrIndex(name);
    if (idx < 0) {
      return Status::InvalidArgument("unknown attribute " + type.name + "." +
                                     name);
    }
    TCOB_ASSIGN_OR_RETURN(out[idx],
                          Coerce(value, type.attributes[idx].type));
  }
  return out;
}

// ---- DML ----

Result<AtomId> Database::InsertAtom(
    const std::string& type_name,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(std::vector<Value> values,
                        ResolveAssignmentsFor(*type, assignments, nullptr));
  return InsertAtomValues(type_name, std::move(values), from);
}

Result<AtomId> Database::InsertAtomValues(const std::string& type_name,
                                          std::vector<Value> values,
                                          Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  WalOp op;
  op.type = WalOpType::kInsertAtom;
  op.atom_id = catalog_.NextAtomId();
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  TCOB_RETURN_NOT_OK(LogAndApply(op));
  return op.atom_id;
}

Status Database::UpdateAtom(
    const std::string& type_name, AtomId id,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  // Carry unchanged attributes over from the version being replaced.
  TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> current,
                        store_->GetAsOf(*type, id, from - 1));
  if (!current.has_value()) {
    return Status::InvalidArgument("atom " + std::to_string(id) +
                                   " has no version just before " +
                                   TimestampToString(from));
  }
  TCOB_ASSIGN_OR_RETURN(
      std::vector<Value> values,
      ResolveAssignmentsFor(*type, assignments, &current->attrs));
  return UpdateAtomValues(type_name, id, std::move(values), from);
}

Status Database::UpdateAtomValues(const std::string& type_name, AtomId id,
                                  std::vector<Value> values, Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  WalOp op;
  op.type = WalOpType::kUpdateAtom;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  return LogAndApply(op);
}

Status Database::DeleteAtom(const std::string& type_name, AtomId id,
                            Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  WalOp op;
  op.type = WalOpType::kDeleteAtom;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  return LogAndApply(op);
}

Status Database::Connect(const std::string& link_name, AtomId from_id,
                         AtomId to_id, Timestamp at) {
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        catalog_.GetLinkTypeByName(link_name));
  WalOp op;
  op.type = WalOpType::kConnect;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  return LogAndApply(op);
}

Status Database::Disconnect(const std::string& link_name, AtomId from_id,
                            AtomId to_id, Timestamp at) {
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        catalog_.GetLinkTypeByName(link_name));
  WalOp op;
  op.type = WalOpType::kDisconnect;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  return LogAndApply(op);
}

// ---- queries ----

Result<ResultSet> Database::Execute(const std::string& mql) {
  TCOB_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(mql));
  return ExecuteStatement(stmt);
}

Result<std::vector<ResultSet>> Database::ExecuteScript(
    const std::string& mql) {
  TCOB_ASSIGN_OR_RETURN(std::vector<Statement> stmts,
                        Parser::ParseScript(mql));
  std::vector<ResultSet> out;
  out.reserve(stmts.size());
  for (const Statement& stmt : stmts) {
    TCOB_ASSIGN_OR_RETURN(ResultSet result, ExecuteStatement(stmt));
    out.push_back(std::move(result));
  }
  return out;
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt) {
  using R = Result<ResultSet>;
  return std::visit(
      [&](const auto& s) -> R {
        using T = std::decay_t<decltype(s)>;
        ResultSet out;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          Materializer mat(&catalog_, store_.get(), links_.get(), query_pool_.get());
          SelectExecutor exec(&catalog_, &mat, now_, attr_indexes_.get());
          return exec.Execute(s);
        } else if constexpr (std::is_same_v<T, ExplainStmt>) {
          Materializer mat(&catalog_, store_.get(), links_.get(), query_pool_.get());
          SelectExecutor exec(&catalog_, &mat, now_, attr_indexes_.get());
          return exec.Explain(s.select);
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          TCOB_ASSIGN_OR_RETURN(
              IndexId id, CreateAttrIndex(s.name, s.type_name, s.attr_name));
          out.message = "created index " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, CreateAtomTypeStmt>) {
          std::vector<AttributeDef> attrs;
          for (const auto& [name, type] : s.attributes) {
            attrs.push_back(AttributeDef{name, type});
          }
          TCOB_ASSIGN_OR_RETURN(TypeId id,
                                CreateAtomType(s.name, std::move(attrs)));
          out.message = "created atom type " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, CreateLinkStmt>) {
          TCOB_ASSIGN_OR_RETURN(
              LinkTypeId id, CreateLinkType(s.name, s.from_type, s.to_type));
          out.message = "created link type " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, CreateMoleculeTypeStmt>) {
          TCOB_ASSIGN_OR_RETURN(
              MoleculeTypeId id,
              CreateMoleculeType(s.name, s.root_type, s.edges));
          out.message = "created molecule type " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          Timestamp from = s.from.is_now ? now_ : s.from.at;
          TCOB_ASSIGN_OR_RETURN(AtomId id,
                                InsertAtom(s.type_name, s.assignments, from));
          out.inserted_id = id;
          out.message = "inserted atom #" + std::to_string(id) +
                        " valid from " + TimestampToString(from);
          return out;
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          Timestamp from = s.from.is_now ? now_ : s.from.at;
          TCOB_RETURN_NOT_OK(
              UpdateAtom(s.type_name, s.atom_id, s.assignments, from));
          out.message = "updated atom #" + std::to_string(s.atom_id) +
                        " valid from " + TimestampToString(from);
          return out;
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          Timestamp from = s.from.is_now ? now_ : s.from.at;
          TCOB_RETURN_NOT_OK(DeleteAtom(s.type_name, s.atom_id, from));
          out.message = "deleted atom #" + std::to_string(s.atom_id) +
                        " valid from " + TimestampToString(from);
          return out;
        } else if constexpr (std::is_same_v<T, ConnectStmt>) {
          Timestamp at = s.from.is_now ? now_ : s.from.at;
          TCOB_RETURN_NOT_OK(Connect(s.link_name, s.from_id, s.to_id, at));
          out.message = "connected";
          return out;
        } else if constexpr (std::is_same_v<T, DisconnectStmt>) {
          Timestamp at = s.from.is_now ? now_ : s.from.at;
          TCOB_RETURN_NOT_OK(
              Disconnect(s.link_name, s.from_id, s.to_id, at));
          out.message = "disconnected";
          return out;
        } else if constexpr (std::is_same_v<T, ShowStatsStmt>) {
          out.columns = {"METRIC", "VALUE"};
          auto add = [&out](const std::string& metric, int64_t value) {
            out.rows.push_back(
                {Value::String(metric), Value::Int(value)});
          };
          add("clock_now", now_);
          add("strategy",
              static_cast<int64_t>(options_.strategy));
          out.rows.back()[1] =
              Value::String(StorageStrategyName(options_.strategy));
          TCOB_ASSIGN_OR_RETURN(StoreSpaceStats space, store_->SpaceStats());
          add("store_heap_pages", static_cast<int64_t>(space.heap_pages));
          add("store_index_pages", static_cast<int64_t>(space.index_pages));
          add("store_total_bytes", static_cast<int64_t>(space.total_bytes));
          TCOB_ASSIGN_OR_RETURN(uint64_t link_pages, links_->TotalPages());
          add("link_pages", static_cast<int64_t>(link_pages));
          TCOB_ASSIGN_OR_RETURN(uint64_t idx_pages,
                                attr_indexes_->TotalPages());
          add("attr_index_pages", static_cast<int64_t>(idx_pages));
          const BufferPoolStats& pool = pool_->stats();
          add("pool_capacity_pages", static_cast<int64_t>(pool_->capacity()));
          add("pool_fetches", static_cast<int64_t>(pool.fetches));
          add("pool_hits", static_cast<int64_t>(pool.hits));
          add("pool_evictions", static_cast<int64_t>(pool.evictions));
          const DiskStats& disk = disk_->stats();
          add("disk_reads", static_cast<int64_t>(disk.reads));
          add("disk_writes", static_cast<int64_t>(disk.writes));
          TCOB_ASSIGN_OR_RETURN(uint64_t wal_bytes, wal_->SizeBytes());
          add("wal_bytes", static_cast<int64_t>(wal_bytes));
          return out;
        } else if constexpr (std::is_same_v<T, VacuumStmt>) {
          TCOB_ASSIGN_OR_RETURN(uint64_t removed, VacuumBefore(s.before));
          out.message = "vacuumed " + std::to_string(removed) +
                        " version(s) before " + TimestampToString(s.before);
          return out;
        } else if constexpr (std::is_same_v<T, ShowCatalogStmt>) {
          out.columns = {"KIND", "NAME", "DETAIL"};
          for (const AtomTypeDef* t : catalog_.AtomTypes()) {
            std::string detail;
            for (size_t i = 0; i < t->attributes.size(); ++i) {
              if (i) detail += ", ";
              detail += t->attributes[i].name + " " +
                        AttrTypeName(t->attributes[i].type);
            }
            out.rows.push_back({Value::String("ATOM_TYPE"),
                                Value::String(t->name),
                                Value::String(detail)});
          }
          for (const LinkTypeDef* l : catalog_.LinkTypes()) {
            const AtomTypeDef* from = nullptr;
            const AtomTypeDef* to = nullptr;
            Result<const AtomTypeDef*> rf = catalog_.GetAtomType(l->from_type);
            Result<const AtomTypeDef*> rt = catalog_.GetAtomType(l->to_type);
            if (rf.ok()) from = rf.value();
            if (rt.ok()) to = rt.value();
            out.rows.push_back(
                {Value::String("LINK"), Value::String(l->name),
                 Value::String((from ? from->name : "?") + " -> " +
                               (to ? to->name : "?"))});
          }
          for (const AttrIndexDef* idx : catalog_.AttrIndexes()) {
            Result<const AtomTypeDef*> t = catalog_.GetAtomType(idx->atom_type);
            std::string detail = "?";
            if (t.ok()) {
              detail = t.value()->name + "." +
                       t.value()->attributes[idx->attr_pos].name;
            }
            out.rows.push_back({Value::String("INDEX"),
                                Value::String(idx->name),
                                Value::String(detail)});
          }
          for (const MoleculeTypeDef* m : catalog_.MoleculeTypes()) {
            Result<const AtomTypeDef*> root =
                catalog_.GetAtomType(m->root_type);
            out.rows.push_back(
                {Value::String("MOLECULE_TYPE"), Value::String(m->name),
                 Value::String("root " +
                               (root.ok() ? root.value()->name : "?") + ", " +
                               std::to_string(m->edges.size()) + " edge(s)")});
          }
          return out;
        } else {
          return Status::NotSupported("unhandled statement kind");
        }
      },
      stmt);
}

// ---- maintenance ----

Result<uint64_t> Database::VacuumBefore(Timestamp cutoff) {
  // The WAL may reference pre-cutoff versions (idempotency markers), so
  // flush + truncate it before touching the stores.
  TCOB_RETURN_NOT_OK(Checkpoint());
  uint64_t removed = 0;
  for (const AtomTypeDef* type : catalog_.AtomTypes()) {
    TCOB_ASSIGN_OR_RETURN(uint64_t n, store_->VacuumBefore(*type, cutoff));
    removed += n;
  }
  for (const LinkTypeDef* link : catalog_.LinkTypes()) {
    TCOB_RETURN_NOT_OK(links_->VacuumBefore(*link, cutoff).status());
  }
  TCOB_RETURN_NOT_OK(attr_indexes_->VacuumBefore(cutoff).status());
  TCOB_RETURN_NOT_OK(Checkpoint());
  return removed;
}

// ---- durability ----

Status Database::Checkpoint() {
  TCOB_RETURN_NOT_OK(pool_->FlushAll());
  TCOB_RETURN_NOT_OK(disk_->SyncAll());
  TCOB_RETURN_NOT_OK(catalog_.SaveToFile(dir_ + "/catalog.tcob"));
  TCOB_RETURN_NOT_OK(SaveClock());
  return wal_->Truncate();
}

Status Database::Flush() {
  TCOB_RETURN_NOT_OK(pool_->FlushAll());
  return catalog_.SaveToFile(dir_ + "/catalog.tcob");
}

Status Database::SaveClock() const {
  std::string bytes;
  PutFixed64(&bytes, static_cast<uint64_t>(now_));
  std::string path = dir_ + "/clock.tcob";
  FILE* f = fopen(path.c_str(), "wb");
  if (!f) return Status::IOError("open " + path);
  size_t n = fwrite(bytes.data(), 1, bytes.size(), f);
  fclose(f);
  if (n != bytes.size()) return Status::IOError("short write " + path);
  return Status::OK();
}

Status Database::LoadClock() {
  std::string path = dir_ + "/clock.tcob";
  FILE* f = fopen(path.c_str(), "rb");
  if (!f) return Status::OK();  // fresh database
  char buf[8];
  size_t n = fread(buf, 1, sizeof(buf), f);
  fclose(f);
  if (n == 8) now_ = static_cast<Timestamp>(DecodeFixed64(buf));
  return Status::OK();
}

}  // namespace tcob
