#include "db/database.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <thread>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"
#include "query/cursor.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/parser.h"
#include "wal/log_record.h"

namespace tcob {

const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kReadOnly:
      return "read-only";
    case HealthState::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const DatabaseOptions& options) {
  std::unique_ptr<Database> db(new Database(dir, options));
  TCOB_RETURN_NOT_OK(db->Init());
  return db;
}

Database::~Database() {
  // The session transaction dies with the instance (its buffered
  // operations are discarded); any *external* Transaction still alive
  // sees the token expire and degrades to FailedPrecondition instead
  // of dereferencing freed components.
  if (session_txn_ != nullptr) {
    session_txn_->Abort();
    session_txn_.reset();
  }
  alive_token_.reset();
  if (!initialized_) {
    // Open failed partway; the directory's contents are untrusted and
    // must not be overwritten by a best-effort flush.
    return;
  }
  if (options_.read_only) {
    // A read-only open promises to leave the directory untouched.
    return;
  }
  if (!fail_stop_.ok()) {
    // A stable-storage write already failed; we cannot tell what is
    // durable, so write nothing more — recovery from the WAL is the
    // source of truth.
    return;
  }
  // A full checkpoint: the meta watermark may only advance in lockstep
  // with the journaled pages being applied, and Checkpoint is the one
  // code path that guarantees that.
  Status s = Checkpoint();
  if (!s.ok()) {
    TCOB_LOG(kError) << "checkpoint on close failed: " << s.ToString();
  }
}

Status Database::Init() {
  env_ = options_.env != nullptr ? options_.env : IoEnv::Default();
  memory_budget_.set_trace(&trace_rec_);
  admission_.set_trace(&trace_rec_);
  if (options_.io_retry.enabled()) {
    // Every component below sees the retrying decorator; transient read
    // failures are absorbed (bounded backoff) instead of surfacing.
    retry_env_ = std::make_unique<RetryingIoEnv>(env_, options_.io_retry);
    retry_env_->set_trace(&trace_rec_);
    env_ = retry_env_.get();
  }
  TCOB_RETURN_NOT_OK(env_->CreateDir(dir_));
  // Page-journal recovery runs before anything reads a data page: a
  // committed journal is a checkpoint whose in-place apply was cut
  // short, and its pages plus its meta watermark must win together.
  journal_ = std::make_unique<PageJournal>(env_, dir_);
  TCOB_ASSIGN_OR_RETURN(JournalRecovery jrec, journal_->Open());
  if (jrec.committed) {
    TCOB_RETURN_NOT_OK(journal_->ApplyCommitted());
    TCOB_RETURN_NOT_OK(
        WriteFileAtomic(env_, dir_ + "/clock.tcob", jrec.meta_blob));
  }
  TCOB_RETURN_NOT_OK(journal_->Reset());
  TCOB_ASSIGN_OR_RETURN(disk_, DiskManager::Open(dir_, env_, journal_.get()));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options_.buffer_pool_pages);
  pool_->set_trace(&trace_rec_);
  size_t workers = options_.parallelism;
  if (workers == 0) {
    workers = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (workers > 1) {
    query_pool_ = std::make_unique<ThreadPool>(workers);
  }
  Result<Catalog> loaded = Catalog::LoadFromFile(env_, dir_ + "/catalog.tcob");
  if (loaded.ok()) {
    catalog_ = std::move(loaded).value();
  } else if (!loaded.status().IsNotFound()) {
    return loaded.status();
  }
  store_ = MakeTemporalStore(options_.strategy, pool_.get(),
                             std::string(StorageStrategyName(
                                 options_.strategy)),
                             options_.store);
  if (options_.tiering.enabled) {
    // Attached before recovery: WAL replay of retroactive DML consults
    // the cold tier's idempotence markers.
    cold_tier_ = std::make_unique<ColdTier>(
        pool_.get(), std::string(StorageStrategyName(options_.strategy)));
    cold_tier_->set_memory_budget(&memory_budget_);
    cold_tier_->set_trace(&trace_rec_);
    store_->AttachColdTier(cold_tier_.get());
  }
  links_ = std::make_unique<LinkStore>(pool_.get(), "links");
  attr_indexes_ = std::make_unique<AttrIndexManager>(pool_.get(), &catalog_);
  TCOB_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(dir_ + "/wal.log", env_));
  wal_->set_trace(&trace_rec_);
  wal_->set_group_commit(options_.group_commit,
                         options_.group_commit_window_micros);
  TCOB_RETURN_NOT_OK(LoadMeta());
  TCOB_RETURN_NOT_OK(Recover());
  recovery_stats_.journal_pages_applied =
      jrec.committed ? jrec.committed_pages : 0;
  recovery_stats_.journal_discarded_bytes = jrec.discarded_bytes;
  if (!options_.read_only && (recovery_stats_.discarded_txn_ops > 0 ||
                              recovery_stats_.wal_dropped_tail_bytes > 0)) {
    // Recovery ignored records that are still physically in the log
    // (orphaned uncommitted-transaction operations, a torn tail) and
    // consumed no sequence numbers for them. New appends would land
    // *after* those remnants while reusing their op_seqs — and a commit
    // record reusing an orphaned txn id would make the next recovery
    // replay the orphan as committed. Checkpointing here flushes the
    // recovered state and truncates the log, so remnants never coexist
    // with new records. On failure the instance opens degraded
    // (poisoned read-only by CheckpointLocked): mutations stay refused
    // until TryRecover's checkpoint succeeds, so the hazard cannot
    // materialize through the degraded instance either.
    Status cleaned = Checkpoint();
    if (!cleaned.ok()) {
      TCOB_LOG(kError) << "post-recovery WAL cleanup checkpoint failed: "
                       << cleaned.ToString();
    }
  }
  RegisterMetrics();
  initialized_ = true;
  return Status::OK();
}

void Database::RegisterMetrics() {
  trace_rec_.RegisterMetrics(&metrics_);
  store_->RegisterMetrics(&metrics_);
  if (cold_tier_ != nullptr) cold_tier_->RegisterMetrics(&metrics_);
  pool_->RegisterMetrics(&metrics_);
  disk_->RegisterMetrics(&metrics_);
  wal_->RegisterMetrics(&metrics_);
  metrics_.RegisterCounter("tcob_statements_total", &statements_total_);
  metrics_.RegisterCounter("tcob_queries_total", &queries_total_);
  metrics_.RegisterCounter("tcob_slow_queries_total", &slow_queries_total_);
  metrics_.RegisterCounter("tcob_checkpoints_total", &checkpoints_total_);
  metrics_.RegisterCounter("tcob_vcache_atom_hits_total",
                           &vcache_atom_hits_total_);
  metrics_.RegisterCounter("tcob_vcache_atom_misses_total",
                           &vcache_atom_misses_total_);
  metrics_.RegisterCounter("tcob_vcache_link_hits_total",
                           &vcache_link_hits_total_);
  metrics_.RegisterCounter("tcob_vcache_link_misses_total",
                           &vcache_link_misses_total_);
  metrics_.RegisterCounter("tcob_vcache_versions_pinned_total",
                           &vcache_versions_pinned_total_);
  metrics_.RegisterCounter("tcob_query_cancelled_total",
                           &query_cancelled_total_);
  metrics_.RegisterCounter("tcob_query_deadline_exceeded_total",
                           &query_deadline_exceeded_total_);
  metrics_.RegisterCounter("tcob_txns_begun_total", &txns_begun_total_);
  metrics_.RegisterCounter("tcob_txns_committed_total",
                           &txns_committed_total_);
  metrics_.RegisterCounter("tcob_txns_aborted_total", &txns_aborted_total_);
  metrics_.RegisterCounter("tcob_txn_conflicts_total",
                           &txn_conflicts_total_);
  metrics_.RegisterHistogram("tcob_query_latency_us", &query_latency_us_);
  metrics_.RegisterGaugeFn("tcob_txns_active", [this]() {
    return static_cast<int64_t>(txn_manager_.active_txns());
  });
  metrics_.RegisterGaugeFn("tcob_clock_now", [this]() {
    return static_cast<int64_t>(Now());
  });
  metrics_.RegisterGaugeFn("tcob_health_state", [this]() {
    return static_cast<int64_t>(health_state());
  });
  metrics_.RegisterGaugeFn("tcob_memory_budget_cap_bytes", [this]() {
    return static_cast<int64_t>(memory_budget_.cap());
  });
  metrics_.RegisterGaugeFn("tcob_memory_charged_bytes", [this]() {
    return static_cast<int64_t>(memory_budget_.charged());
  });
  metrics_.RegisterGaugeFn("tcob_memory_peak_bytes", [this]() {
    return static_cast<int64_t>(memory_budget_.peak());
  });
  metrics_.RegisterGaugeFn("tcob_memory_budget_rejections_total", [this]() {
    return static_cast<int64_t>(memory_budget_.rejected());
  });
  metrics_.RegisterGaugeFn("tcob_admission_inflight", [this]() {
    return static_cast<int64_t>(admission_.inflight());
  });
  metrics_.RegisterGaugeFn("tcob_admission_queue_depth", [this]() {
    return static_cast<int64_t>(admission_.queue_depth());
  });
  metrics_.RegisterGaugeFn("tcob_admission_peak_queue_depth", [this]() {
    return static_cast<int64_t>(admission_.peak_queue_depth());
  });
  metrics_.RegisterGaugeFn("tcob_admission_admitted_total", [this]() {
    return static_cast<int64_t>(admission_.admitted());
  });
  metrics_.RegisterGaugeFn("tcob_admission_rejected_total", [this]() {
    return static_cast<int64_t>(admission_.rejected());
  });
  metrics_.RegisterGaugeFn("tcob_io_retries_total", [this]() {
    return retry_env_ != nullptr
               ? static_cast<int64_t>(retry_env_->retries())
               : 0;
  });
  metrics_.RegisterGaugeFn("tcob_recovery_replayed_ops", [this]() {
    return static_cast<int64_t>(recovery_stats_.replayed_ops);
  });
  metrics_.RegisterGaugeFn("tcob_recovery_skipped_ops", [this]() {
    return static_cast<int64_t>(recovery_stats_.skipped_ops);
  });
  metrics_.RegisterGaugeFn("tcob_recovery_journal_pages_applied", [this]() {
    return static_cast<int64_t>(recovery_stats_.journal_pages_applied);
  });
  metrics_.RegisterGaugeFn("tcob_recovery_wal_dropped_tail_bytes", [this]() {
    return static_cast<int64_t>(recovery_stats_.wal_dropped_tail_bytes);
  });
  metrics_.RegisterGaugeFn("tcob_recovery_discarded_txn_ops", [this]() {
    return static_cast<int64_t>(recovery_stats_.discarded_txn_ops);
  });
}

Status Database::Recover() {
  auto schema_lookup =
      [this](TypeId type) -> Result<std::vector<AttrType>> {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def, catalog_.GetAtomType(type));
    return def->AttrTypes();
  };
  // Operations below the checkpoint watermark are already reflected in
  // the flushed stores; replaying them would double-apply. They linger
  // in the WAL only when a crash hit between the checkpoint's meta save
  // and its WAL truncation — exactly the window re-crash recovery hits.
  const uint64_t base = next_op_seq_;
  recovery_stats_ = RecoveryStats{};
  recovery_stats_.checkpoint_base_seq = base;
  // Pass 1: which transactions actually committed? A transaction's
  // operations and its commit record are appended in one writer-mutex
  // critical section, so an uncommitted transaction's operations can
  // only be the log's final records (the crash hit between the group's
  // enqueue and its fsync) — but per-transaction atomicity is decided
  // here by the commit record's presence, not by position.
  std::set<uint64_t> committed_txns;
  uint64_t max_txn_id = 0;
  Status scan = wal_->ReadAll([&](const Slice& payload) -> Result<bool> {
    TCOB_ASSIGN_OR_RETURN(WalOp op, WalOp::Decode(payload, schema_lookup));
    if (op.type == WalOpType::kCommit && op.txn_id != 0) {
      committed_txns.insert(op.txn_id);
    }
    if (op.txn_id > max_txn_id) max_txn_id = op.txn_id;
    return true;
  });
  TCOB_RETURN_NOT_OK(scan);
  // Transaction ids are not durable (the counter restarts at 1 on every
  // open), but atomicity above is decided by matching a commit record's
  // txn id against operation records — so a fresh transaction must never
  // reuse an id still present in the log. Advance past everything seen;
  // Init additionally truncates the log (via a checkpoint) when orphaned
  // records were discarded, so they cannot outlive this open at all.
  if (max_txn_id >= next_txn_id_.load(std::memory_order_relaxed)) {
    next_txn_id_.store(max_txn_id + 1, std::memory_order_relaxed);
  }
  // Pass 2: apply. Operations of uncommitted transactions are
  // discarded wholesale and do not consume sequence numbers (the
  // watermark must equal what the surviving prefix applied).
  WalReadStats wal_stats;
  Status replay = wal_->ReadAll(
      [&](const Slice& payload) -> Result<bool> {
        TCOB_ASSIGN_OR_RETURN(WalOp op, WalOp::Decode(payload, schema_lookup));
        if (op.txn_id != 0 && op.type != WalOpType::kCommit &&
            op.type != WalOpType::kCheckpoint &&
            committed_txns.count(op.txn_id) == 0) {
          ++recovery_stats_.discarded_txn_ops;
          return true;
        }
        if (op.op_seq + 1 > next_op_seq_) next_op_seq_ = op.op_seq + 1;
        if (op.type == WalOpType::kCommit ||
            op.type == WalOpType::kCheckpoint) {
          return true;
        }
        if (op.op_seq < base) {
          ++recovery_stats_.skipped_ops;
          return true;
        }
        TCOB_RETURN_NOT_OK(ApplyOp(op));
        ObserveTimestamp(op.valid_from);
        ++recovery_stats_.replayed_ops;
        return true;
      },
      &wal_stats);
  TCOB_RETURN_NOT_OK(replay);
  if (recovery_stats_.discarded_txn_ops > 0) {
    TCOB_LOG(kWarn) << "discarded " << recovery_stats_.discarded_txn_ops
                    << " operation(s) of uncommitted transaction(s)";
  }
  recovery_stats_.wal_dropped_tail_bytes = wal_stats.dropped_tail_bytes;
  recovery_stats_.wal_tail_was_corrupt = wal_stats.tail_was_corrupt;
  if (wal_stats.dropped_tail_bytes > 0) {
    TCOB_LOG(kWarn) << "dropped " << wal_stats.dropped_tail_bytes
                    << " byte(s) of "
                    << (wal_stats.tail_was_corrupt ? "corrupt" : "torn")
                    << " WAL tail";
  }
  if (recovery_stats_.replayed_ops > 0 || recovery_stats_.skipped_ops > 0) {
    TCOB_LOG(kInfo) << "recovered " << recovery_stats_.replayed_ops
                    << " WAL operation(s), skipped "
                    << recovery_stats_.skipped_ops
                    << " below checkpoint base " << base;
  }
  return Status::OK();
}

Status Database::ApplyOp(const WalOp& op) {
  switch (op.type) {
    case WalOpType::kInsertAtom: {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                            catalog_.GetAtomType(op.atom_type));
      catalog_.AdvanceAtomIdWatermark(op.atom_id + 1);
      TCOB_RETURN_NOT_OK(
          store_->Insert(*type, op.atom_id, op.attrs, op.valid_from));
      if (attr_indexes_->HasIndexes(type->id)) {
        TCOB_RETURN_NOT_OK(attr_indexes_->OnInsert(*type, op.atom_id,
                                                   op.attrs, op.valid_from));
      }
      return Status::OK();
    }
    case WalOpType::kUpdateAtom: {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                            catalog_.GetAtomType(op.atom_type));
      // Capture the version being closed before the store mutates it
      // (index maintenance needs its value and begin; under WAL replay
      // the lookup still finds it because it is already closed at
      // valid_from).
      std::optional<AtomVersion> old_version;
      if (attr_indexes_->HasIndexes(type->id)) {
        TCOB_ASSIGN_OR_RETURN(
            old_version,
            store_->GetAsOf(*type, op.atom_id, op.valid_from - 1));
      }
      TCOB_RETURN_NOT_OK(
          store_->Update(*type, op.atom_id, op.attrs, op.valid_from));
      if (old_version.has_value()) {
        TCOB_RETURN_NOT_OK(attr_indexes_->OnUpdate(
            *type, op.atom_id, *old_version, op.attrs, op.valid_from));
      }
      return Status::OK();
    }
    case WalOpType::kDeleteAtom: {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                            catalog_.GetAtomType(op.atom_type));
      std::optional<AtomVersion> old_version;
      if (attr_indexes_->HasIndexes(type->id)) {
        TCOB_ASSIGN_OR_RETURN(
            old_version,
            store_->GetAsOf(*type, op.atom_id, op.valid_from - 1));
      }
      TCOB_RETURN_NOT_OK(store_->Delete(*type, op.atom_id, op.valid_from));
      if (old_version.has_value()) {
        TCOB_RETURN_NOT_OK(attr_indexes_->OnDelete(*type, op.atom_id,
                                                   *old_version,
                                                   op.valid_from));
      }
      return Status::OK();
    }
    case WalOpType::kConnect: {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_.GetLinkType(op.link_type));
      return links_->Connect(*link, op.from_id, op.to_id, op.valid_from);
    }
    case WalOpType::kDisconnect: {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_.GetLinkType(op.link_type));
      return links_->Disconnect(*link, op.from_id, op.to_id, op.valid_from);
    }
    case WalOpType::kCommit:
    case WalOpType::kCheckpoint:
      return Status::OK();
  }
  return Status::Internal("unhandled wal op");
}

void Database::MaybeDumpTraceOnFailure(const char* label) {
  if (!options_.trace.dump_on_failure || !trace_rec_.is_enabled()) return;
  const std::string dir =
      options_.trace.dump_dir.empty() ? dir_ : options_.trace.dump_dir;
  const std::string path = dir + "/trace-" + label + "-" +
                           std::to_string(++trace_dump_seq_) + ".json";
  if (trace_rec_.DumpToFile(path)) {
    TCOB_LOG(kWarn) << "flight recorder dumped to " << path;
  }
}

void Database::Poison(const Status& cause) {
  if (!fail_stop_.ok()) return;  // keep the first failure
  fail_stop_ = Status::IOError(
      "database is read-only after a stable-storage failure: " +
      cause.ToString());
  health_state_ = HealthState::kReadOnly;
  trace_rec_.Emit(TraceEventType::kHealthTransition,
                  static_cast<uint64_t>(HealthState::kReadOnly));
  TCOB_LOG(kError) << "entering fail-stop mode: " << cause.ToString();
  MaybeDumpTraceOnFailure("read-only");
}

void Database::FailHard(const Status& cause) {
  // kFailed trumps kReadOnly: even if a storage failure was recorded
  // first, a diverged in-memory image is the stronger condition.
  if (health_state_ != HealthState::kFailed) {
    fail_stop_ = Status::IOError(
        "database failed (in-memory state diverged from the log): " +
        cause.ToString());
    health_state_ = HealthState::kFailed;
    trace_rec_.Emit(TraceEventType::kHealthTransition,
                    static_cast<uint64_t>(HealthState::kFailed));
    TCOB_LOG(kError) << "entering failed mode: " << cause.ToString();
    MaybeDumpTraceOnFailure("failed");
  }
}

Status Database::DumpTraceToFile(const std::string& path) const {
  if (!trace_rec_.DumpToFile(path)) {
    return Status::IOError("cannot write trace dump to " + path);
  }
  return Status::OK();
}

Status Database::LogAndApply(WalOp op) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  std::vector<AttrType> schema;
  if (op.type == WalOpType::kInsertAtom ||
      op.type == WalOpType::kUpdateAtom) {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                          catalog_.GetAtomType(op.atom_type));
    schema = def->AttrTypes();
  }
  op.op_seq = next_op_seq_;
  if (op.stamped_now) {
    // VALID FROM NOW resolves here, under the writer mutex — not at
    // parse time. A commit that slipped in between would otherwise
    // leave this stamp at or before a snapshot pinned after it, making
    // the statement retroactively visible inside that snapshot.
    op.valid_from = Now();
  }
  std::string payload;
  TCOB_RETURN_NOT_OK(op.Encode(schema, &payload));
  Status logged = wal_->Append(payload);
  if (logged.ok() && options_.sync_wal) logged = wal_->SyncBatch();
  if (!logged.ok()) {
    // The WAL's durable state is unknowable (the record may be torn on
    // disk, a failed fsync may have dropped it); stop writing.
    Poison(logged);
    return logged;
  }
  ++next_op_seq_;
  Status applied = ApplyOp(op);
  if (applied.ok()) {
    ObserveTimestamp(op.valid_from);
    // The statement is a single-key commit as far as snapshot
    // validation goes: an open transaction that also wrote this entity
    // must lose at its own Commit.
    txn_manager_.CommitAuto(WriteKeyForOp(op));
  } else if (applied.IsIOError() || applied.IsCorruption()) {
    // The record is durably logged but the stores refused it for an
    // environmental reason: a replay would reapply it, so the in-memory
    // image no longer matches what recovery will build. Validation
    // errors (NotFound etc.) are deterministic — replay fails the same
    // way — and stay user-visible without degrading the instance.
    FailHard(applied);
  }
  return applied;
}

// ---- transactions ----

namespace {

/// Commit-time re-stamping may reorder a transaction's writes to one
/// entity: a VALID FROM NOW operation buffered *before* an explicit
/// future stamp can overtake it once concurrent commits pushed NOW
/// past that stamp. The stores would refuse the out-of-order apply —
/// after the commit record is already durable, poisoning the instance
/// — so the overlap is caught here and the commit loses as a temporal
/// conflict instead. The invariant mirrors buffering-time validation:
/// per entity, strictly increasing begins, except a re-connect may
/// reuse the instant the previous link interval ended at.
Status CheckRestampedOrder(const std::vector<WalOp>& ops,
                           const std::vector<TxnWriteKey>& keys) {
  std::map<TxnWriteKey, Timestamp> last;
  for (size_t i = 0; i < ops.size(); ++i) {
    auto [it, first] = last.try_emplace(keys[i], ops[i].valid_from);
    if (first) continue;
    const bool may_touch = ops[i].type == WalOpType::kConnect;
    if (ops[i].valid_from > it->second ||
        (may_touch && ops[i].valid_from == it->second)) {
      it->second = ops[i].valid_from;
      continue;
    }
    return Status::TxnConflict(
        "concurrent commits advanced NOW past this transaction's "
        "explicit stamps; re-stamping its VALID FROM NOW operations "
        "would reorder writes to the same entity — retry the "
        "transaction");
  }
  return Status::OK();
}

}  // namespace

Transaction Database::Begin() {
  const uint64_t txn_id =
      next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Timestamp snapshot = kMinTimestamp;
  uint64_t snapshot_seq = 0;
  {
    // Snapshot instant: the chronon just before NOW. Commits stamp
    // their VALID FROM NOW operations under writer_mu_ (LogAndApply,
    // CommitOps), so everything committed after this point lands at
    // >= NOW, strictly after the snapshot — concurrent committers stay
    // invisible. Pinning must itself hold writer_mu_: a multi-op
    // commit advances NOW per applied op, and an unlocked pin could
    // land mid-batch, seeing its earlier ops but not its later ones.
    std::lock_guard<std::mutex> lk(writer_mu_);
    snapshot = Now() - 1;
    snapshot_seq = txn_manager_.BeginTxn(txn_id);
  }
  txns_begun_total_.Increment();
  trace_rec_.Emit(TraceEventType::kTxnBegin, txn_id);
  return Transaction(this, txn_id, snapshot, snapshot_seq, alive_token_);
}

void Database::OnTxnAborted(uint64_t txn_id) {
  txn_manager_.EndTxn(txn_id);
  txns_aborted_total_.Increment();
  trace_rec_.Emit(TraceEventType::kTxnAbort, txn_id);
}

Status Database::CommitOps(uint64_t txn_id, const std::vector<WalOp>& ops,
                           uint64_t snapshot_seq) {
  if (ops.empty()) {
    // A write-free transaction commits trivially: nothing to validate,
    // nothing to log.
    txn_manager_.EndTxn(txn_id);
    txns_committed_total_.Increment();
    trace_rec_.Emit(TraceEventType::kTxnCommit, txn_id);
    return Status::OK();
  }
  std::vector<TxnWriteKey> keys;
  keys.reserve(ops.size());
  for (const WalOp& op : ops) keys.push_back(WriteKeyForOp(op));

  std::unique_lock<std::mutex> lk(writer_mu_);
  Status writable = CheckWritable();
  if (!writable.ok()) {
    txn_manager_.EndTxn(txn_id);
    return writable;
  }
  // First-committer-wins: anyone who committed one of our write keys
  // after our snapshot wins; we abort and our buffered ops vanish.
  Status valid = txn_manager_.CheckConflict(snapshot_seq, keys);
  if (!valid.ok()) {
    txn_manager_.EndTxn(txn_id);
    txn_conflicts_total_.Increment();
    trace_rec_.Emit(TraceEventType::kTxnConflict, txn_id);
    return valid;
  }
  // The buffered VALID FROM NOW stamps were provisional (the
  // transaction-local clock at buffering time); left alone, a commit
  // could land at or before a snapshot pinned *after* buffering and
  // become retroactively visible inside it. Re-stamp them to the
  // commit instant, advancing a local clock by the same rule
  // ObserveTimestamp applies below, so NOW ops land at the commit's
  // NOW and explicit stamps keep their absolute positions.
  std::vector<WalOp> stamped = ops;
  Timestamp commit_clock = Now();
  bool restamped = false;
  for (WalOp& op : stamped) {
    if (op.stamped_now) {
      op.valid_from = commit_clock;
      restamped = true;
    }
    if (op.valid_from >= commit_clock) commit_clock = op.valid_from + 1;
  }
  if (restamped) {
    Status ordered = CheckRestampedOrder(stamped, keys);
    if (!ordered.ok()) {
      txn_manager_.EndTxn(txn_id);
      txn_conflicts_total_.Increment();
      trace_rec_.Emit(TraceEventType::kTxnConflict, txn_id);
      return ordered;
    }
  }
  // Phase 1: log everything, ending with the commit record. Sequence
  // numbers are consumed per logged record so the watermark matches
  // what a later replay will see. The whole batch is appended inside
  // one writer-mutex critical section, so a transaction's records are
  // contiguous in the log and its commit record directly follows them.
  for (WalOp& op : stamped) {
    std::vector<AttrType> schema;
    if (op.type == WalOpType::kInsertAtom ||
        op.type == WalOpType::kUpdateAtom) {
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* def,
                            catalog_.GetAtomType(op.atom_type));
      schema = def->AttrTypes();
    }
    op.op_seq = next_op_seq_;
    std::string payload;
    TCOB_RETURN_NOT_OK(op.Encode(schema, &payload));
    Status logged = wal_->Append(payload);
    if (!logged.ok()) {
      txn_manager_.EndTxn(txn_id);
      Poison(logged);
      return logged;
    }
    ++next_op_seq_;
  }
  WalOp commit;
  commit.type = WalOpType::kCommit;
  commit.txn_id = txn_id;
  commit.op_seq = next_op_seq_;
  std::string payload;
  TCOB_RETURN_NOT_OK(commit.Encode({}, &payload));
  Status logged = wal_->Append(payload);
  if (!logged.ok()) {
    txn_manager_.EndTxn(txn_id);
    Poison(logged);
    return logged;
  }
  ++next_op_seq_;
  // Phase 2: apply. Validation at buffering time plus the conflict
  // check guarantee success; a failure here means the in-memory image
  // diverged from the log (the commit record is already appended, so
  // recovery would reapply the batch).
  for (const WalOp& op : stamped) {
    Status applied = ApplyOp(op);
    if (!applied.ok()) {
      Status wrapped =
          Status::Internal("transaction apply failed after logging: " +
                           applied.ToString());
      // The commit record is durable but the image is now partial; no
      // further access can be trusted.
      txn_manager_.EndTxn(txn_id);
      FailHard(wrapped);
      return wrapped;
    }
    ObserveTimestamp(op.valid_from);
  }
  txn_manager_.Commit(txn_id, std::move(keys));
  txns_committed_total_.Increment();
  trace_rec_.Emit(TraceEventType::kTxnCommit, txn_id);
  // Phase 3: durability — *outside* the writer mutex, so concurrent
  // committers reach SyncBatch together and share one group fsync.
  // The effects are visible before they are durable (standard early
  // lock release); the ack below only happens once the group's fsync
  // covered this commit record. A crash in between recovers to the
  // unacked transaction being absent or present atomically — never
  // partial — via the two-pass replay.
  lk.unlock();
  if (options_.sync_wal) {
    Status synced = wal_->SyncBatch();
    if (!synced.ok()) {
      std::lock_guard<std::mutex> relk(writer_mu_);
      Poison(synced);
      return synced;
    }
  }
  return Status::OK();
}

Status Database::BeginSession() {
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    TCOB_RETURN_NOT_OK(CheckWritable());
  }
  if (InSessionTxn()) {
    return Status::InvalidArgument(
        "a transaction is already open; COMMIT or ABORT it first");
  }
  session_txn_.reset(new Transaction(Begin()));
  return Status::OK();
}

Status Database::CommitSession() {
  if (!InSessionTxn()) {
    return Status::InvalidArgument("no open transaction");
  }
  Status committed = session_txn_->Commit();
  session_txn_.reset();
  return committed;
}

Status Database::AbortSession() {
  if (!InSessionTxn()) {
    return Status::InvalidArgument("no open transaction");
  }
  session_txn_->Abort();
  session_txn_.reset();
  return Status::OK();
}

// ---- DDL ----

// The catalog save is atomic (temp file + rename + directory sync), so
// a crash mid-DDL leaves either the old or the new catalog, never a
// partial one. A failed save still poisons the database: the rename may
// or may not have reached disk.
Status Database::SaveCatalog() {
  Status saved = catalog_.SaveToFile(env_, dir_ + "/catalog.tcob");
  if (!saved.ok()) Poison(saved);
  return saved;
}

Result<TypeId> Database::CreateAtomType(const std::string& name,
                                        std::vector<AttributeDef> attributes) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  TCOB_ASSIGN_OR_RETURN(TypeId id,
                        catalog_.CreateAtomType(name, std::move(attributes)));
  TCOB_RETURN_NOT_OK(SaveCatalog());
  return id;
}

Result<LinkTypeId> Database::CreateLinkType(const std::string& name,
                                            const std::string& from_type,
                                            const std::string& to_type) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* from,
                        catalog_.GetAtomTypeByName(from_type));
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* to,
                        catalog_.GetAtomTypeByName(to_type));
  TCOB_ASSIGN_OR_RETURN(LinkTypeId id,
                        catalog_.CreateLinkType(name, from->id, to->id));
  TCOB_RETURN_NOT_OK(SaveCatalog());
  return id;
}

Result<MoleculeTypeId> Database::CreateMoleculeType(
    const std::string& name, const std::string& root_type,
    const std::vector<std::pair<std::string, bool>>& edges) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root,
                        catalog_.GetAtomTypeByName(root_type));
  std::vector<MoleculeEdge> resolved;
  for (const auto& [link_name, forward] : edges) {
    TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                          catalog_.GetLinkTypeByName(link_name));
    resolved.push_back(MoleculeEdge{link->id, forward});
  }
  TCOB_ASSIGN_OR_RETURN(
      MoleculeTypeId id,
      catalog_.CreateMoleculeType(name, root->id, std::move(resolved)));
  TCOB_RETURN_NOT_OK(SaveCatalog());
  return id;
}

Result<IndexId> Database::CreateAttrIndex(const std::string& name,
                                          const std::string& type_name,
                                          const std::string& attr_name) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(IndexId id,
                        catalog_.CreateAttrIndex(name, type->id, attr_name));
  TCOB_RETURN_NOT_OK(SaveCatalog());
  TCOB_ASSIGN_OR_RETURN(const AttrIndexDef* def, catalog_.GetAttrIndex(id));
  TCOB_RETURN_NOT_OK(attr_indexes_->Backfill(*def, *type, *store_));
  return id;
}

// ---- value handling ----

Result<Value> Database::Coerce(const Value& v, AttrType target) {
  if (v.is_null()) return Value::Null(target);
  if (v.type() == target) return v;
  if (v.type() == AttrType::kInt) {
    switch (target) {
      case AttrType::kDouble:
        return Value::Double(static_cast<double>(v.AsInt()));
      case AttrType::kTimestamp:
        return Value::Time(v.AsInt());
      case AttrType::kId:
        return Value::Id(static_cast<AtomId>(v.AsInt()));
      default:
        break;
    }
  }
  return Status::TypeError(std::string("cannot assign ") +
                           AttrTypeName(v.type()) + " to " +
                           AttrTypeName(target));
}

Result<std::vector<Value>> Database::ResolveAssignmentsFor(
    const AtomTypeDef& type,
    const std::vector<std::pair<std::string, Value>>& assignments,
    const std::vector<Value>* base) {
  std::vector<Value> out;
  out.reserve(type.attributes.size());
  if (base != nullptr) {
    out = *base;
  } else {
    for (const AttributeDef& attr : type.attributes) {
      out.push_back(Value::Null(attr.type));
    }
  }
  for (const auto& [name, value] : assignments) {
    int idx = type.AttrIndex(name);
    if (idx < 0) {
      return Status::InvalidArgument("unknown attribute " + type.name + "." +
                                     name);
    }
    TCOB_ASSIGN_OR_RETURN(out[idx],
                          Coerce(value, type.attributes[idx].type));
  }
  return out;
}

// ---- DML ----

Result<AtomId> Database::InsertAtom(
    const std::string& type_name,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from, bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(std::vector<Value> values,
                        ResolveAssignmentsFor(*type, assignments, nullptr));
  return InsertAtomValues(type_name, std::move(values), from, from_now);
}

Result<AtomId> Database::InsertAtomValues(const std::string& type_name,
                                          std::vector<Value> values,
                                          Timestamp from, bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  WalOp op;
  op.type = WalOpType::kInsertAtom;
  op.stamped_now = from_now;
  op.atom_id = catalog_.NextAtomId();
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  TCOB_RETURN_NOT_OK(LogAndApply(op));
  return op.atom_id;
}

Status Database::UpdateAtom(
    const std::string& type_name, AtomId id,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from, bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  // Carry unchanged attributes over from the version being replaced.
  TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> current,
                        store_->GetAsOf(*type, id, from - 1));
  if (!current.has_value()) {
    return Status::InvalidArgument("atom " + std::to_string(id) +
                                   " has no version just before " +
                                   TimestampToString(from));
  }
  TCOB_ASSIGN_OR_RETURN(
      std::vector<Value> values,
      ResolveAssignmentsFor(*type, assignments, &current->attrs));
  return UpdateAtomValues(type_name, id, std::move(values), from, from_now);
}

Status Database::UpdateAtomValues(const std::string& type_name, AtomId id,
                                  std::vector<Value> values, Timestamp from,
                                  bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  WalOp op;
  op.type = WalOpType::kUpdateAtom;
  op.stamped_now = from_now;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  return LogAndApply(op);
}

Status Database::DeleteAtom(const std::string& type_name, AtomId id,
                            Timestamp from, bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        catalog_.GetAtomTypeByName(type_name));
  WalOp op;
  op.type = WalOpType::kDeleteAtom;
  op.stamped_now = from_now;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  return LogAndApply(op);
}

Status Database::Connect(const std::string& link_name, AtomId from_id,
                         AtomId to_id, Timestamp at, bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        catalog_.GetLinkTypeByName(link_name));
  WalOp op;
  op.type = WalOpType::kConnect;
  op.stamped_now = from_now;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  return LogAndApply(op);
}

Status Database::Disconnect(const std::string& link_name, AtomId from_id,
                            AtomId to_id, Timestamp at, bool from_now) {
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        catalog_.GetLinkTypeByName(link_name));
  WalOp op;
  op.type = WalOpType::kDisconnect;
  op.stamped_now = from_now;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  return LogAndApply(op);
}

// ---- queries ----

Result<ResultSet> Database::Execute(const std::string& mql) {
  StopwatchUs parse_timer;
  TCOB_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(mql));
  double parse_us = parse_timer.ElapsedUs();
  return ExecuteStatementImpl(stmt, &mql, parse_us);
}

Result<std::vector<ResultSet>> Database::ExecuteScript(
    const std::string& mql) {
  TCOB_ASSIGN_OR_RETURN(std::vector<Statement> stmts,
                        Parser::ParseScript(mql));
  std::vector<ResultSet> out;
  out.reserve(stmts.size());
  for (const Statement& stmt : stmts) {
    TCOB_ASSIGN_OR_RETURN(ResultSet result, ExecuteStatement(stmt));
    out.push_back(std::move(result));
  }
  return out;
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt) {
  return ExecuteStatementImpl(stmt, nullptr, 0.0);
}

Result<ResultSet> Database::Explain(const std::string& select_mql,
                                    bool analyze) {
  StopwatchUs parse_timer;
  TCOB_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(select_mql));
  double parse_us = parse_timer.ElapsedUs();
  if (SelectStmt* select = std::get_if<SelectStmt>(&stmt)) {
    ExplainStmt explain;
    explain.select = std::move(*select);
    explain.analyze = analyze;
    return ExecuteStatementImpl(Statement(std::move(explain)), &select_mql,
                                parse_us);
  }
  if (std::holds_alternative<ExplainStmt>(stmt)) {
    return ExecuteStatementImpl(stmt, &select_mql, parse_us);
  }
  return Status::InvalidArgument("Explain expects a SELECT statement");
}

/// Everything one SELECT cursor's execution needs alive until it is
/// finalized: the statement copy, the trace, the counter baselines, and
/// the materializer/executor pair the producer thread runs against.
struct Database::SelectCursorContext {
  SelectStmt stmt;
  QueryStats trace;
  /// Started at open; total_us and first_row_us are offsets from it.
  StopwatchUs total_timer;
  StoreAccessStats store_before;
  ColdTierAccessStats tiering_before;
  BufferPoolStats pool_before;
  /// Cancellation scope of this query (deadline armed from options);
  /// shared with the cursor so Cancel() reaches the producer.
  std::shared_ptr<QueryContext> qctx;
  /// Per-query memory accounting against the database budget
  /// (immovable, so emplaced once the context exists).
  std::optional<BudgetLease> lease;
  /// True while this query holds an admission slot (released exactly
  /// once, in FinalizeSelectTrace).
  bool admitted = false;
  /// Flight-recorder id of this query (stamped into every event the
  /// query's threads emit).
  uint64_t query_id = 0;
  /// The stream's final status, for the disposition stamp.
  Status final_status = Status::OK();
  std::optional<Materializer> mat;
  std::optional<SelectExecutor> exec;
  SelectPlan plan;
};

Result<std::unique_ptr<Cursor>> Database::Query(const std::string& mql) {
  StopwatchUs parse_timer;
  TCOB_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(mql));
  double parse_us = parse_timer.ElapsedUs();
  if (const SelectStmt* select = std::get_if<SelectStmt>(&stmt)) {
    statements_total_.Increment();
    return NewSelectCursor(*select, &mql, parse_us);
  }
  // Non-SELECT statements execute eagerly; the cursor carries the
  // finished result (DML messages, EXPLAIN tables, SHOW output).
  TCOB_ASSIGN_OR_RETURN(ResultSet out,
                        ExecuteStatementImpl(stmt, &mql, parse_us));
  return std::unique_ptr<Cursor>(new MaterializedCursor(std::move(out)));
}

Result<ResultSet> Database::ExecuteSelect(const SelectStmt& stmt,
                                          const std::string* text,
                                          double parse_us) {
  TCOB_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor,
                        NewSelectCursor(stmt, text, parse_us));
  ResultSet out;
  out.columns = cursor->columns();
  std::vector<Value> row;
  while (true) {
    Result<bool> more = cursor->Next(&row);
    if (!more.ok()) {
      cursor->Close();
      return more.status();
    }
    if (!more.value()) break;
    out.rows.push_back(std::move(row));
  }
  out.message = cursor->message();
  cursor->Close();
  return out;
}

Result<std::unique_ptr<Cursor>> Database::NewSelectCursor(
    const SelectStmt& stmt, const std::string* text, double parse_us) {
  TCOB_RETURN_NOT_OK(CheckReadable());
  auto ctx = std::make_shared<SelectCursorContext>();
  // The cursor may outlive the caller's statement (Query returns before
  // the rows are pulled), so the context owns a deep copy.
  ctx->stmt = CloneSelect(stmt);
  // Inside the session transaction every read is pinned to its
  // snapshot: NOW resolves to the snapshot instant, and an explicit
  // VALID AT later than the snapshot is clamped back to it, so the
  // transaction can never observe a concurrent committer.
  Timestamp exec_now = Now();
  if (InSessionTxn()) {
    const Timestamp snapshot = session_txn_->snapshot();
    exec_now = snapshot;
    if (ctx->stmt.mode == TemporalMode::kAsOf && !ctx->stmt.at_now &&
        ctx->stmt.at > snapshot) {
      ctx->stmt.at = snapshot;
    }
  }
  if (text != nullptr) ctx->trace.statement = *text;
  ctx->trace.strategy = StorageStrategyName(options_.strategy);
  ctx->trace.parse_us = parse_us;
  // Attribute storage work by counter deltas: the counters are exact
  // (relaxed atomics under the fan-out), and statement execution is
  // single-threaded per database, so the open->finalize delta is this
  // query's work.
  ctx->store_before = store_->access_stats();
  ctx->tiering_before = store_->cold_access_stats();
  ctx->pool_before = pool_->stats();
  ctx->qctx = QueryContext::WithDeadline(options_.default_query_deadline_micros);
  ctx->query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  ctx->qctx->set_query_id(ctx->query_id);
  // The open path (admission, planning, and — for pipeline breakers —
  // the whole execution) runs on this thread under the query's id; the
  // producer thread and the finalize hook re-establish it themselves.
  TraceQueryScope qscope(ctx->query_id);
  trace_rec_.Emit(TraceEventType::kQueryBegin);
  ctx->lease.emplace(&memory_budget_);
  if (admission_.max_inflight() > 0) {
    StopwatchUs wait_timer;
    Status slot =
        admission_.Acquire(ctx->qctx.get(), options_.admission_timeout_micros);
    ctx->trace.admission_wait_us = wait_timer.ElapsedUs();
    if (!slot.ok()) {
      ctx->final_status = slot;
      FinalizeSelectTrace(ctx.get());
      return slot;
    }
    ctx->admitted = true;
  }
  ctx->mat.emplace(&catalog_, store_.get(), links_.get(), query_pool_.get());
  ctx->mat->set_governance(ctx->qctx.get(), &*ctx->lease);
  ctx->mat->set_trace_recorder(&trace_rec_);
  ctx->exec.emplace(&catalog_, &*ctx->mat, exec_now, attr_indexes_.get());
  ctx->exec->set_trace(&ctx->trace);
  ctx->exec->set_context(ctx->qctx.get());
  ctx->exec->set_recorder(&trace_rec_);

  if (!SelectExecutor::CanStream(ctx->stmt)) {
    // Pipeline breakers (aggregates, ORDER BY) need every row before
    // the first output row: execute materialized and wrap the result.
    Result<ResultSet> out = ctx->exec->Execute(ctx->stmt);
    ctx->final_status = out.status();
    ctx->trace.rows_streamed = ctx->trace.rows;
    ctx->trace.peak_buffered_rows = ctx->trace.rows;
    ctx->trace.first_row_us = parse_us + ctx->total_timer.ElapsedUs();
    FinalizeSelectTrace(ctx.get());
    TCOB_RETURN_NOT_OK(out.status());
    return std::unique_ptr<Cursor>(
        new MaterializedCursor(std::move(out).value()));
  }

  Result<SelectPlan> plan = ctx->exec->Plan(ctx->stmt);
  if (!plan.ok()) {
    ctx->final_status = plan.status();
    FinalizeSelectTrace(ctx.get());
    return plan.status();
  }
  ctx->plan = std::move(plan).value();
  ctx->trace.surface = "streaming";
  // The producer thread owns a share of the context; the finalize hook
  // runs back on this thread (Next/Close after the producer joined).
  auto producer = [ctx](RowSink* sink) -> Status {
    TraceQueryScope qscope(ctx->query_id);
    return ctx->exec->ExecuteStreaming(ctx->stmt, ctx->plan, sink);
  };
  auto on_first_row = [ctx] {
    ctx->trace.first_row_us =
        ctx->trace.parse_us + ctx->total_timer.ElapsedUs();
  };
  auto finalize = [this, ctx](const Status& status,
                              const StreamingCursorStats& stats) {
    ctx->final_status = status;  // sticky in the cursor; kept for the trace
    ctx->trace.rows = stats.rows_streamed;
    ctx->trace.rows_streamed = stats.rows_streamed;
    ctx->trace.peak_buffered_rows = stats.peak_buffered_rows;
    FinalizeSelectTrace(ctx.get());
  };
  StreamingCursor::Options copts;
  copts.context = ctx->qctx;
  copts.lease = &*ctx->lease;
  return std::unique_ptr<Cursor>(new StreamingCursor(
      ctx->plan.columns, ctx->plan.message, std::move(producer),
      std::move(finalize), std::move(on_first_row), copts));
}

void Database::FinalizeSelectTrace(SelectCursorContext* ctx) {
  // Finalize may run on the consumer thread long after the open scope
  // ended; re-adopt the query id so the end-of-life events attribute.
  TraceQueryScope qscope(ctx->query_id);
  QueryStats& trace = ctx->trace;
  trace.store = store_->access_stats();
  trace.store -= ctx->store_before;
  trace.tiering = store_->cold_access_stats();
  trace.tiering -= ctx->tiering_before;
  trace.pool = pool_->stats();
  trace.pool -= ctx->pool_before;
  trace.total_us = trace.parse_us + ctx->total_timer.ElapsedUs();
  if (ctx->lease.has_value()) {
    trace.peak_memory_bytes = ctx->lease->peak();
    trace.memory_overflow_bytes = ctx->lease->overflow();
  }
  const Status& outcome = ctx->final_status;
  if (outcome.IsCancelled() ||
      (outcome.ok() && ctx->qctx != nullptr && ctx->qctx->cancelled())) {
    trace.disposition = "cancelled";
    query_cancelled_total_.Increment();
    trace_rec_.Emit(TraceEventType::kCancelFire);
  } else if (outcome.IsDeadlineExceeded()) {
    trace.disposition = "deadline-exceeded";
    query_deadline_exceeded_total_.Increment();
    trace_rec_.Emit(TraceEventType::kDeadlineFire);
  } else if (!outcome.ok()) {
    trace.disposition = "error";
  }
  trace_rec_.Emit(TraceEventType::kQueryEnd,
                  static_cast<uint64_t>(trace.rows));
  if (ctx->admitted) {
    admission_.Release();
    ctx->admitted = false;
  }

  queries_total_.Increment();
  query_latency_us_.Observe(static_cast<uint64_t>(trace.total_us));
  vcache_atom_hits_total_.Add(trace.cache.atom_hits);
  vcache_atom_misses_total_.Add(trace.cache.atom_misses);
  vcache_link_hits_total_.Add(trace.cache.link_hits);
  vcache_link_misses_total_.Add(trace.cache.link_misses);
  vcache_versions_pinned_total_.Add(trace.cache.versions_pinned);
  const uint64_t threshold = options_.slow_query_threshold_micros;
  if (threshold > 0 && trace.total_us >= static_cast<double>(threshold)) {
    slow_queries_total_.Increment();
    TCOB_LOG(kWarn) << "slow query (" << trace.total_us << "us >= "
                    << threshold << "us): "
                    << (trace.statement.empty() ? "<ast>" : trace.statement)
                    << " | plan: " << trace.plan << " | rows: " << trace.rows
                    << " | store accesses: " << trace.store.Total()
                    << " | disposition: " << trace.disposition
                    << " | surface: " << trace.surface
                    << " | peak mem: " << trace.peak_memory_bytes << "B";
  }
  last_query_stats_ = trace;
}

Result<ResultSet> Database::ExecuteStatementImpl(const Statement& stmt,
                                                 const std::string* text,
                                                 double parse_us) {
  TCOB_RETURN_NOT_OK(CheckReadable());
  statements_total_.Increment();
  using R = Result<ResultSet>;
  return std::visit(
      [&](const auto& s) -> R {
        using T = std::decay_t<decltype(s)>;
        ResultSet out;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          return ExecuteSelect(s, text, parse_us);
        } else if constexpr (std::is_same_v<T, ExplainStmt>) {
          if (s.analyze) {
            // Execute the query under the trace, then return the trace
            // (not the rows) — the EXPLAIN ANALYZE contract.
            TCOB_RETURN_NOT_OK(ExecuteSelect(s.select, text, parse_us)
                                   .status());
            return last_query_stats_.ToResultSet();
          }
          Materializer mat(&catalog_, store_.get(), links_.get(), query_pool_.get());
          const Timestamp explain_now =
              InSessionTxn() ? session_txn_->snapshot() : Now();
          SelectExecutor exec(&catalog_, &mat, explain_now,
                              attr_indexes_.get());
          return exec.Explain(s.select);
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          TCOB_ASSIGN_OR_RETURN(
              IndexId id, CreateAttrIndex(s.name, s.type_name, s.attr_name));
          out.message = "created index " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, CreateAtomTypeStmt>) {
          std::vector<AttributeDef> attrs;
          for (const auto& [name, type] : s.attributes) {
            attrs.push_back(AttributeDef{name, type});
          }
          TCOB_ASSIGN_OR_RETURN(TypeId id,
                                CreateAtomType(s.name, std::move(attrs)));
          out.message = "created atom type " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, CreateLinkStmt>) {
          TCOB_ASSIGN_OR_RETURN(
              LinkTypeId id, CreateLinkType(s.name, s.from_type, s.to_type));
          out.message = "created link type " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, CreateMoleculeTypeStmt>) {
          TCOB_ASSIGN_OR_RETURN(
              MoleculeTypeId id,
              CreateMoleculeType(s.name, s.root_type, s.edges));
          out.message = "created molecule type " + s.name + " (id " +
                        std::to_string(id) + ")";
          return out;
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          // NOW is resolved against the session transaction's pinned
          // clock for the buffered message; the definitive stamp is
          // assigned at commit (transaction) or under the writer mutex
          // (auto-commit) via WalOp::stamped_now.
          if (InSessionTxn()) {
            Timestamp from =
                s.from.is_now ? session_txn_->local_now() : s.from.at;
            TCOB_ASSIGN_OR_RETURN(
                AtomId id,
                session_txn_->InsertAtom(s.type_name, s.assignments, from,
                                         s.from.is_now));
            out.inserted_id = id;
            out.message = "buffered insert of atom #" + std::to_string(id) +
                          " valid from " + TimestampToString(from) +
                          " (transaction " +
                          std::to_string(session_txn_->id()) + ")";
            return out;
          }
          Timestamp from = s.from.is_now ? Now() : s.from.at;
          TCOB_ASSIGN_OR_RETURN(
              AtomId id,
              InsertAtom(s.type_name, s.assignments, from, s.from.is_now));
          out.inserted_id = id;
          out.message = "inserted atom #" + std::to_string(id) +
                        " valid from " + TimestampToString(from);
          return out;
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          if (InSessionTxn()) {
            Timestamp from =
                s.from.is_now ? session_txn_->local_now() : s.from.at;
            TCOB_RETURN_NOT_OK(session_txn_->UpdateAtom(
                s.type_name, s.atom_id, s.assignments, from, s.from.is_now));
            out.message = "buffered update of atom #" +
                          std::to_string(s.atom_id) + " valid from " +
                          TimestampToString(from) + " (transaction " +
                          std::to_string(session_txn_->id()) + ")";
            return out;
          }
          Timestamp from = s.from.is_now ? Now() : s.from.at;
          TCOB_RETURN_NOT_OK(UpdateAtom(s.type_name, s.atom_id, s.assignments,
                                        from, s.from.is_now));
          out.message = "updated atom #" + std::to_string(s.atom_id) +
                        " valid from " + TimestampToString(from);
          return out;
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          if (InSessionTxn()) {
            Timestamp from =
                s.from.is_now ? session_txn_->local_now() : s.from.at;
            TCOB_RETURN_NOT_OK(session_txn_->DeleteAtom(
                s.type_name, s.atom_id, from, s.from.is_now));
            out.message = "buffered delete of atom #" +
                          std::to_string(s.atom_id) + " valid from " +
                          TimestampToString(from) + " (transaction " +
                          std::to_string(session_txn_->id()) + ")";
            return out;
          }
          Timestamp from = s.from.is_now ? Now() : s.from.at;
          TCOB_RETURN_NOT_OK(
              DeleteAtom(s.type_name, s.atom_id, from, s.from.is_now));
          out.message = "deleted atom #" + std::to_string(s.atom_id) +
                        " valid from " + TimestampToString(from);
          return out;
        } else if constexpr (std::is_same_v<T, ConnectStmt>) {
          if (InSessionTxn()) {
            Timestamp at =
                s.from.is_now ? session_txn_->local_now() : s.from.at;
            TCOB_RETURN_NOT_OK(session_txn_->Connect(
                s.link_name, s.from_id, s.to_id, at, s.from.is_now));
            out.message = "buffered connect (transaction " +
                          std::to_string(session_txn_->id()) + ")";
            return out;
          }
          Timestamp at = s.from.is_now ? Now() : s.from.at;
          TCOB_RETURN_NOT_OK(
              Connect(s.link_name, s.from_id, s.to_id, at, s.from.is_now));
          out.message = "connected";
          return out;
        } else if constexpr (std::is_same_v<T, DisconnectStmt>) {
          if (InSessionTxn()) {
            Timestamp at =
                s.from.is_now ? session_txn_->local_now() : s.from.at;
            TCOB_RETURN_NOT_OK(session_txn_->Disconnect(
                s.link_name, s.from_id, s.to_id, at, s.from.is_now));
            out.message = "buffered disconnect (transaction " +
                          std::to_string(session_txn_->id()) + ")";
            return out;
          }
          Timestamp at = s.from.is_now ? Now() : s.from.at;
          TCOB_RETURN_NOT_OK(
              Disconnect(s.link_name, s.from_id, s.to_id, at, s.from.is_now));
          out.message = "disconnected";
          return out;
        } else if constexpr (std::is_same_v<T, BeginStmt>) {
          TCOB_RETURN_NOT_OK(BeginSession());
          out.message = "transaction " +
                        std::to_string(session_txn_->id()) + " started";
          return out;
        } else if constexpr (std::is_same_v<T, CommitStmt>) {
          if (!InSessionTxn()) {
            return Status::InvalidArgument("no open transaction");
          }
          const uint64_t txn_id = session_txn_->id();
          const size_t buffered = session_txn_->pending_ops();
          TCOB_RETURN_NOT_OK(CommitSession());
          out.message = "transaction " + std::to_string(txn_id) +
                        " committed (" + std::to_string(buffered) +
                        " operation(s))";
          return out;
        } else if constexpr (std::is_same_v<T, AbortStmt>) {
          if (!InSessionTxn()) {
            return Status::InvalidArgument("no open transaction");
          }
          const uint64_t txn_id = session_txn_->id();
          TCOB_RETURN_NOT_OK(AbortSession());
          out.message = "transaction " + std::to_string(txn_id) + " aborted";
          return out;
        } else if constexpr (std::is_same_v<T, ShowStatsStmt>) {
          out.columns = {"METRIC", "VALUE"};
          auto add = [&out](const std::string& metric, int64_t value) {
            out.rows.push_back(
                {Value::String(metric), Value::Int(value)});
          };
          add("clock_now", now_);
          add("strategy",
              static_cast<int64_t>(options_.strategy));
          out.rows.back()[1] =
              Value::String(StorageStrategyName(options_.strategy));
          TCOB_ASSIGN_OR_RETURN(StoreSpaceStats space, store_->SpaceStats());
          add("store_heap_pages", static_cast<int64_t>(space.heap_pages));
          add("store_index_pages", static_cast<int64_t>(space.index_pages));
          add("store_total_bytes", static_cast<int64_t>(space.total_bytes));
          TCOB_ASSIGN_OR_RETURN(uint64_t link_pages, links_->TotalPages());
          add("link_pages", static_cast<int64_t>(link_pages));
          TCOB_ASSIGN_OR_RETURN(uint64_t idx_pages,
                                attr_indexes_->TotalPages());
          add("attr_index_pages", static_cast<int64_t>(idx_pages));
          const BufferPoolStats& pool = pool_->stats();
          add("pool_capacity_pages", static_cast<int64_t>(pool_->capacity()));
          add("pool_fetches", static_cast<int64_t>(pool.fetches));
          add("pool_hits", static_cast<int64_t>(pool.hits));
          add("pool_evictions", static_cast<int64_t>(pool.evictions));
          const DiskStats& disk = disk_->stats();
          add("disk_reads", static_cast<int64_t>(disk.reads));
          add("disk_writes", static_cast<int64_t>(disk.writes));
          TCOB_ASSIGN_OR_RETURN(uint64_t wal_bytes, wal_->SizeBytes());
          add("wal_bytes", static_cast<int64_t>(wal_bytes));
          if (cold_tier_ != nullptr) {
            ColdSpaceStats cold;
            for (const AtomTypeDef* t : catalog_.AtomTypes()) {
              TCOB_ASSIGN_OR_RETURN(ColdSpaceStats cs,
                                    cold_tier_->SpaceStats(*t));
              cold.segments += cs.segments;
              cold.versions += cs.versions;
              cold.blob_bytes += cs.blob_bytes;
              cold.total_pages += cs.total_pages;
            }
            add("cold_segments", static_cast<int64_t>(cold.segments));
            add("cold_versions", static_cast<int64_t>(cold.versions));
            add("cold_blob_bytes", static_cast<int64_t>(cold.blob_bytes));
            add("cold_pages", static_cast<int64_t>(cold.total_pages));
          }
          return out;
        } else if constexpr (std::is_same_v<T, VacuumStmt>) {
          TCOB_ASSIGN_OR_RETURN(uint64_t removed, VacuumBefore(s.before));
          out.message = "vacuumed " + std::to_string(removed) +
                        " version(s) before " + TimestampToString(s.before);
          return out;
        } else if constexpr (std::is_same_v<T, ShowCatalogStmt>) {
          out.columns = {"KIND", "NAME", "DETAIL"};
          for (const AtomTypeDef* t : catalog_.AtomTypes()) {
            std::string detail;
            for (size_t i = 0; i < t->attributes.size(); ++i) {
              if (i) detail += ", ";
              detail += t->attributes[i].name + " " +
                        AttrTypeName(t->attributes[i].type);
            }
            out.rows.push_back({Value::String("ATOM_TYPE"),
                                Value::String(t->name),
                                Value::String(detail)});
          }
          for (const LinkTypeDef* l : catalog_.LinkTypes()) {
            const AtomTypeDef* from = nullptr;
            const AtomTypeDef* to = nullptr;
            Result<const AtomTypeDef*> rf = catalog_.GetAtomType(l->from_type);
            Result<const AtomTypeDef*> rt = catalog_.GetAtomType(l->to_type);
            if (rf.ok()) from = rf.value();
            if (rt.ok()) to = rt.value();
            out.rows.push_back(
                {Value::String("LINK"), Value::String(l->name),
                 Value::String((from ? from->name : "?") + " -> " +
                               (to ? to->name : "?"))});
          }
          for (const AttrIndexDef* idx : catalog_.AttrIndexes()) {
            Result<const AtomTypeDef*> t = catalog_.GetAtomType(idx->atom_type);
            std::string detail = "?";
            if (t.ok()) {
              detail = t.value()->name + "." +
                       t.value()->attributes[idx->attr_pos].name;
            }
            out.rows.push_back({Value::String("INDEX"),
                                Value::String(idx->name),
                                Value::String(detail)});
          }
          for (const MoleculeTypeDef* m : catalog_.MoleculeTypes()) {
            Result<const AtomTypeDef*> root =
                catalog_.GetAtomType(m->root_type);
            out.rows.push_back(
                {Value::String("MOLECULE_TYPE"), Value::String(m->name),
                 Value::String("root " +
                               (root.ok() ? root.value()->name : "?") + ", " +
                               std::to_string(m->edges.size()) + " edge(s)")});
          }
          return out;
        } else {
          return Status::NotSupported("unhandled statement kind");
        }
      },
      stmt);
}

// ---- maintenance ----

Result<uint64_t> Database::VacuumBefore(Timestamp cutoff) {
  std::lock_guard<std::mutex> lk(writer_mu_);
  // The WAL may reference pre-cutoff versions (idempotency markers), so
  // flush + truncate it before touching the stores.
  TCOB_RETURN_NOT_OK(CheckpointLocked());
  uint64_t removed = 0;
  for (const AtomTypeDef* type : catalog_.AtomTypes()) {
    TCOB_ASSIGN_OR_RETURN(uint64_t n, store_->VacuumBefore(*type, cutoff));
    removed += n;
    if (cold_tier_ != nullptr) {
      // Cold versions are strictly older than hot ones, so if the hot
      // vacuum emptied an atom its cold history predates the cutoff too
      // — the cross-tier timeline invariants survive any cutoff.
      TCOB_ASSIGN_OR_RETURN(uint64_t c,
                            cold_tier_->VacuumBefore(*type, cutoff));
      removed += c;
    }
  }
  for (const LinkTypeDef* link : catalog_.LinkTypes()) {
    TCOB_RETURN_NOT_OK(links_->VacuumBefore(*link, cutoff).status());
  }
  TCOB_RETURN_NOT_OK(attr_indexes_->VacuumBefore(cutoff).status());
  TCOB_RETURN_NOT_OK(CheckpointLocked());
  return removed;
}

Result<uint64_t> Database::TierMigrate() {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  if (cold_tier_ == nullptr) return static_cast<uint64_t>(0);
  // Same checkpoint discipline as VacuumBefore: the migration is a
  // physical reorganization, not a logged operation. The WAL is empty
  // while it runs, and its effects become durable only at the trailing
  // checkpoint's journal-commit point — a crash anywhere in between
  // recovers to the pre-migration image.
  {
    TraceScope scope(&trace_rec_, TraceEventType::kTierPhaseBegin,
                     TraceEventType::kTierPhaseEnd,
                     static_cast<uint64_t>(TraceTierPhase::kCheckpoint));
    TCOB_RETURN_NOT_OK(CheckpointLocked());
  }
  const Timestamp cutoff = now_ > options_.tiering.cold_age
                               ? now_ - options_.tiering.cold_age
                               : kMinTimestamp;
  uint64_t migrated = 0;
  for (const AtomTypeDef* type : catalog_.AtomTypes()) {
    std::map<AtomId, std::vector<AtomVersion>> eligible;
    {
      TraceScope scope(&trace_rec_, TraceEventType::kTierPhaseBegin,
                       TraceEventType::kTierPhaseEnd,
                       static_cast<uint64_t>(TraceTierPhase::kCollect));
      TCOB_ASSIGN_OR_RETURN(eligible,
                            store_->CollectMigratable(*type, cutoff));
    }
    if (eligible.empty()) continue;
    uint64_t written = 0;
    {
      TraceScope scope(&trace_rec_, TraceEventType::kTierPhaseBegin,
                       TraceEventType::kTierPhaseEnd,
                       static_cast<uint64_t>(TraceTierPhase::kMigrate));
      TCOB_ASSIGN_OR_RETURN(
          written,
          cold_tier_->Migrate(*type, eligible, query_pool_.get(),
                              options_.tiering.segment_target_bytes));
    }
    uint64_t released = 0;
    {
      TraceScope scope(&trace_rec_, TraceEventType::kTierPhaseBegin,
                       TraceEventType::kTierPhaseEnd,
                       static_cast<uint64_t>(TraceTierPhase::kRelease));
      TCOB_ASSIGN_OR_RETURN(released,
                            store_->ReleaseMigrated(*type, cutoff));
    }
    if (written != released) {
      return Status::Corruption(
          "tier migration of type " + type->name + " wrote " +
          std::to_string(written) + " version(s) but released " +
          std::to_string(released));
    }
    migrated += released;
  }
  {
    TraceScope scope(&trace_rec_, TraceEventType::kTierPhaseBegin,
                     TraceEventType::kTierPhaseEnd,
                     static_cast<uint64_t>(TraceTierPhase::kCheckpoint));
    TCOB_RETURN_NOT_OK(CheckpointLocked());
  }
  return migrated;
}

// ---- durability ----

Status Database::Checkpoint() {
  std::lock_guard<std::mutex> lk(writer_mu_);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  TCOB_RETURN_NOT_OK(CheckWritable());
  // Ordering is the crash-safety argument:
  //  1. every dirty page reaches the page journal (checksummed on
  //     writeback) — the data files are still exactly the image of the
  //     previous checkpoint,
  //  2. the catalog is replaced atomically (it is not WAL-logged, so it
  //     must be durable before the watermark can advance past operations
  //     that depend on it),
  //  3. the journal commit — one fsync covering the staged pages AND the
  //     meta image (clock + op_seq watermark) embedded in the commit
  //     record. This is the atomic point: before it, recovery sees the
  //     old checkpoint's files and replays the full WAL; after it,
  //     recovery re-applies the journal physically (idempotent) and
  //     reinstalls the matching watermark,
  //  4. the in-place apply: journaled pages overwrite the data files,
  //     which are then synced along with the directory,
  //  5. the meta file and the journal reset — redundant with the commit
  //     record (recovery would redo 4–5 from the journal), kept so the
  //     steady state is a clean directory,
  //  6. only then may the WAL forget the covered operations. A crash
  //     before this leaves them in the WAL; the watermark makes
  //     replaying them a no-op.
  auto phase = [this](TraceCheckpointPhase p, const std::function<Status()>& fn) {
    TraceScope scope(&trace_rec_, TraceEventType::kCheckpointPhaseBegin,
                     TraceEventType::kCheckpointPhaseEnd,
                     static_cast<uint64_t>(p));
    return fn();
  };
  Status s = [&]() -> Status {
    TCOB_RETURN_NOT_OK(phase(TraceCheckpointPhase::kFlushPages,
                             [&] { return pool_->FlushAll(); }));
    TCOB_RETURN_NOT_OK(phase(TraceCheckpointPhase::kSaveCatalog, [&] {
      return catalog_.SaveToFile(env_, dir_ + "/catalog.tcob");
    }));
    TCOB_RETURN_NOT_OK(phase(TraceCheckpointPhase::kJournalCommit,
                             [&] { return journal_->Commit(EncodeMeta()); }));
    TCOB_RETURN_NOT_OK(phase(TraceCheckpointPhase::kJournalApply,
                             [&] { return journal_->ApplyCommitted(); }));
    TCOB_RETURN_NOT_OK(
        phase(TraceCheckpointPhase::kSaveMeta, [&] { return SaveMeta(); }));
    TCOB_RETURN_NOT_OK(phase(TraceCheckpointPhase::kWalTruncate, [&] {
      Status truncated = journal_->Reset();
      if (truncated.ok()) truncated = wal_->Truncate();
      return truncated;
    }));
    return Status::OK();
  }();
  if (!s.ok()) {
    Poison(s);
  } else {
    checkpoints_total_.Increment();
  }
  return s;
}

Status Database::Flush() {
  std::lock_guard<std::mutex> lk(writer_mu_);
  TCOB_RETURN_NOT_OK(CheckWritable());
  TCOB_RETURN_NOT_OK(pool_->FlushAll());
  return SaveCatalog();
}

Status Database::TryRecover() {
  if (health_state_ == HealthState::kHealthy) return Status::OK();
  if (health_state_ == HealthState::kFailed) {
    return Status::IOError(
        "cannot recover a failed database instance in place; re-open it "
        "(original failure: " + fail_stop_.ToString() + ")");
  }
  // Probe the environment with a real durable write before trusting it
  // again: a failure here is evidence the outage persists, and the
  // instance stays read-only with its original cause intact.
  const std::string probe_path = dir_ + "/.recover_probe.tmp";
  Status probed = [&]() -> Status {
    TCOB_ASSIGN_OR_RETURN(std::unique_ptr<IoFile> f,
                          env_->OpenFile(probe_path));
    TCOB_RETURN_NOT_OK(f->WriteAt(0, Slice("tcob recover probe")));
    TCOB_RETURN_NOT_OK(f->Sync());
    f.reset();
    return env_->RemoveFile(probe_path);
  }();
  if (!probed.ok()) {
    TCOB_LOG(kWarn) << "recovery probe failed, staying read-only: "
                    << probed.ToString();
    return probed;
  }
  const Status original = fail_stop_;
  // A failed fsync latches the log for good: the kernel may have
  // dropped dirty pages the old descriptor can never re-sync, so no
  // retry through it is trustworthy. Recovery needs a fresh handle;
  // the checkpoint below rebuilds durability from the applied
  // in-memory state and truncates the stale tail, so no byte of the
  // old log is trusted across the swap.
  if (!wal_->health().ok()) {
    Result<std::unique_ptr<WriteAheadLog>> reopened =
        WriteAheadLog::Open(dir_ + "/wal.log", env_);
    if (!reopened.ok()) {
      TCOB_LOG(kWarn) << "recovery WAL reopen failed, staying read-only: "
                      << reopened.status().ToString();
      return reopened.status();
    }
    wal_ = std::move(reopened.value());
    wal_->RegisterMetrics(&metrics_);
  }
  fail_stop_ = Status::OK();
  health_state_ = HealthState::kHealthy;
  trace_rec_.Emit(TraceEventType::kHealthTransition,
                  static_cast<uint64_t>(HealthState::kHealthy));
  // Re-establish a durable baseline. The WAL tail may hold a record the
  // original failure tore (its op was never applied in memory); the
  // checkpoint makes everything applied durable and truncates that tail
  // away. A failure here re-poisons with the new cause.
  Status checkpointed = Checkpoint();
  if (!checkpointed.ok()) return checkpointed;
  TCOB_LOG(kInfo) << "recovered to full service (was: "
                  << original.ToString() << ")";
  return Status::OK();
}

namespace {
constexpr uint32_t kMetaMagic = 0x4d4f4354;  // "TCOM"
constexpr size_t kMetaSize = 4 + 8 + 8 + 4;  // magic, now, op_seq, crc
}  // namespace

std::string Database::EncodeMeta() const {
  std::string bytes;
  PutFixed32(&bytes, kMetaMagic);
  PutFixed64(&bytes, static_cast<uint64_t>(now_));
  PutFixed64(&bytes, next_op_seq_);
  PutFixed32(&bytes, Crc32c(bytes.data(), bytes.size()));
  return bytes;
}

Status Database::SaveMeta() const {
  return WriteFileAtomic(env_, dir_ + "/clock.tcob", EncodeMeta());
}

Status Database::LoadMeta() {
  const std::string path = dir_ + "/clock.tcob";
  Result<std::string> read = ReadFileToString(env_, path);
  if (!read.ok()) {
    if (read.status().IsNotFound()) return Status::OK();  // fresh database
    return read.status();
  }
  const std::string& bytes = read.value();
  if (bytes.size() == 8) {
    // Legacy format: the bare clock, no watermark, no checksum.
    now_ = static_cast<Timestamp>(DecodeFixed64(bytes.data()));
    return Status::OK();
  }
  if (bytes.size() != kMetaSize) {
    return Status::Corruption("meta file " + path + ": unexpected size " +
                              std::to_string(bytes.size()));
  }
  if (DecodeFixed32(bytes.data()) != kMetaMagic) {
    return Status::Corruption("meta file " + path + ": bad magic");
  }
  const uint32_t stored = DecodeFixed32(bytes.data() + kMetaSize - 4);
  if (stored != Crc32c(bytes.data(), kMetaSize - 4)) {
    return Status::Corruption("meta file " + path + ": checksum mismatch");
  }
  now_ = static_cast<Timestamp>(DecodeFixed64(bytes.data() + 4));
  next_op_seq_ = DecodeFixed64(bytes.data() + 12);
  if (next_op_seq_ == 0) next_op_seq_ = 1;
  return Status::OK();
}

// ---- integrity ----

namespace {
/// Page-structured data files: everything in the directory except the
/// WAL, the catalog/meta files, and atomic-replacement leftovers, which
/// carry their own record-level CRCs.
bool IsPageFileName(const std::string& name) {
  auto ends_with = [&name](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  return name != "wal.log" && !ends_with(".tcob") && !ends_with(".tmp") &&
         !ends_with(".journal");
}
}  // namespace

Status Database::VerifyIntegrity() {
  // Pass 1: raw checksum scan of every data file in the directory,
  // straight through the DiskManager so the on-disk bytes are what gets
  // judged (the buffer pool would mask a flipped byte with its cached
  // copy — but any page it caches already passed this same check on
  // fetch).
  TCOB_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  std::vector<char> buf(kPageSize);
  for (const std::string& name : names) {
    if (!IsPageFileName(name)) continue;
    TCOB_ASSIGN_OR_RETURN(FileId file, disk_->OpenFile(name));
    TCOB_ASSIGN_OR_RETURN(PageNo pages, disk_->NumPages(file));
    for (PageNo page = 0; page < pages; ++page) {
      TCOB_RETURN_NOT_OK(disk_->ReadPage(file, page, buf.data()));
      if (!PageChecksumOk(buf.data())) {
        return Status::Corruption("page checksum mismatch in " + name +
                                  " page " + std::to_string(page));
      }
    }
  }
  // Pass 2: logical structure, bottom up — store timelines and trees,
  // link adjacency, then the secondary indexes.
  for (const AtomTypeDef* type : catalog_.AtomTypes()) {
    TCOB_RETURN_NOT_OK(store_->VerifyIntegrity(*type));
  }
  for (const LinkTypeDef* link : catalog_.LinkTypes()) {
    TCOB_RETURN_NOT_OK(links_->VerifyIntegrity(*link));
  }
  return attr_indexes_->VerifyStructure();
}

}  // namespace tcob
