#ifndef TCOB_DB_DATABASE_H_
#define TCOB_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/resource_budget.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace_ring.h"
#include "db/transaction.h"
#include "db/txn_manager.h"
#include "index/attr_index.h"
#include "mad/link_store.h"
#include "mad/materializer.h"
#include "query/ast.h"
#include "query/cursor.h"
#include "query/query_stats.h"
#include "query/result_set.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/io_env.h"
#include "storage/retry_env.h"
#include "tstore/cold_tier.h"
#include "tstore/store_factory.h"
#include "wal/log_record.h"
#include "wal/wal.h"

namespace tcob {

/// Cold-history tiering (see tstore/cold_tier.h). Off by default; when
/// enabled, TierMigrate() moves atom versions whose validity ended more
/// than `cold_age` chronons before NOW out of the hot store into
/// delta-compressed immutable segments. Reads stay transparent (hot and
/// cold merge in timeline order) and every atom keeps at least one hot
/// version, so DML semantics are unchanged.
struct TieringOptions {
  bool enabled = false;
  /// Migration watermark: versions ending at or before NOW - cold_age
  /// are eligible.
  Timestamp cold_age = 64;
  /// Target input size of one segment (full-record bytes before delta
  /// compression). 0 = the ColdTier default.
  uint64_t segment_target_bytes = 32 * 1024;
};

/// Open-time configuration of a TCOB database.
struct DatabaseOptions {
  /// Physical design for atom histories (the paper's central knob).
  StorageStrategy strategy = StorageStrategy::kSeparated;
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 1024;
  /// Store tuning (version index toggle etc.).
  StoreOptions store;
  /// fdatasync the WAL after every auto-committed statement.
  bool sync_wal = false;
  /// Group commit: concurrent committers share one WAL fsync (a leader
  /// syncs for every committer queued at that moment; see
  /// WriteAheadLog::SyncBatch). Disable to give every commit its own
  /// fsync (the benchmark ablation).
  bool group_commit = true;
  /// Optional group-commit batching window: a leader waits up to this
  /// many microseconds for more committers before issuing its fsync.
  /// 0 relies on natural batching under an in-flight fsync.
  uint64_t group_commit_window_micros = 0;
  /// Worker threads for the read path (molecule materialization fans out
  /// across them). 0 = one per hardware thread; 1 = fully serial
  /// execution, byte-identical to the pre-parallel code path. Writes are
  /// single-threaded regardless.
  size_t parallelism = 0;
  /// Physical I/O environment. nullptr = the process-wide POSIX
  /// environment; tests substitute a FaultInjectingIoEnv. Not owned; must
  /// outlive the Database.
  IoEnv* env = nullptr;
  /// SELECTs whose total wall time reaches this many microseconds are
  /// logged at kWarn with their trace summary. 0 disables the log.
  uint64_t slow_query_threshold_micros = 0;
  /// Cold-history tiering knobs (off by default).
  TieringOptions tiering;
  /// Every SELECT gets a deadline this many microseconds after it opens;
  /// a query past it aborts cooperatively with DeadlineExceeded.
  /// 0 disables the default deadline (per-cursor Cancel still works).
  uint64_t default_query_deadline_micros = 0;
  /// Global cap on governed query memory (version-cache pins + buffered
  /// cursor batches), bytes. Past the cap queries shed their caches and
  /// proceed uncharged rather than fail; the *charged* total never
  /// exceeds the cap. 0 = unlimited (accounting still runs).
  uint64_t memory_budget_bytes = 0;
  /// Admission gate: at most this many SELECTs in flight at once; later
  /// arrivals wait up to admission_timeout_micros (bounded also by their
  /// own deadline) and are refused with DeadlineExceeded. 0 = no gate.
  size_t max_inflight_queries = 0;
  /// How long an arriving query may wait at the admission gate.
  uint64_t admission_timeout_micros = 100000;
  /// Open logically read-only: every user mutation (DML, DDL, vacuum,
  /// tier migration) is refused with InvalidArgument, and the close-time
  /// checkpoint is skipped. WAL replay at open still runs (in memory),
  /// so the view matches what a writable open would serve.
  bool read_only = false;
  /// Bounded retry of transiently-failing reads (off by default: the
  /// fault-injection suites rely on single-shot faults actually failing
  /// unless a test opts in).
  IoRetryPolicy io_retry;
  /// Flight recorder (always on by default; see common/trace_ring.h):
  /// per-thread event rings, category mask, ring size, and automatic
  /// dumps on health degradation.
  TraceOptions trace;
};

/// Degradation ladder of a Database instance (see Database::health()).
enum class HealthState {
  /// Full service.
  kHealthy,
  /// A stable-storage write failed: mutations are refused with the
  /// preserved original cause, reads keep serving the last durable
  /// state. TryRecover() can restore write service.
  kReadOnly,
  /// The in-memory image itself is suspect (an apply failed after its
  /// WAL record was durably logged): all access is refused; the only
  /// recovery is to discard the instance and re-Open.
  kFailed,
};

/// Lowercase name of a health state ("healthy" / "read-only" /
/// "failed").
const char* HealthStateName(HealthState s);

/// What Open's WAL replay observed (introspection for crash tests and
/// operators diagnosing a recovery).
struct RecoveryStats {
  /// Operations replayed from the WAL into the stores.
  uint64_t replayed_ops = 0;
  /// Operations skipped because the checkpoint already covered them
  /// (op_seq below the persisted base) — the idempotence path.
  uint64_t skipped_ops = 0;
  /// op_seq watermark loaded from the meta file (first op not covered by
  /// the last checkpoint).
  uint64_t checkpoint_base_seq = 1;
  /// Operations discarded because their transaction never reached its
  /// commit record (the crash hit between a group's enqueue and fsync);
  /// per-transaction atomicity discards them wholesale.
  uint64_t discarded_txn_ops = 0;
  /// Bytes dropped from the WAL tail (torn final record after a crash).
  uint64_t wal_dropped_tail_bytes = 0;
  /// True when the dropped tail failed its CRC (vs merely truncated).
  bool wal_tail_was_corrupt = false;
  /// Pages physically re-applied from a committed checkpoint journal
  /// (a crash hit the checkpoint's in-place apply phase).
  uint64_t journal_pages_applied = 0;
  /// Uncommitted page-journal bytes discarded (writebacks that never
  /// reached a checkpoint commit, or a tail torn by the crash).
  uint64_t journal_discarded_bytes = 0;
};

/// The public face of the temporal complex-object database.
///
/// A Database owns one directory of files: the catalog, the WAL, and the
/// files of the chosen storage strategy. All DML is valid-time stamped;
/// every mutation is WAL-logged before being applied, and Open replays
/// the log tail after a crash. Execution is single-threaded (one thread
/// per Database instance).
///
/// Typical use:
///   TCOB_ASSIGN_OR_RETURN(auto db, Database::Open("/data/hr", {}));
///   db->Execute("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
///   db->Execute("INSERT ATOM Emp (name='ada', salary=10) VALID FROM 5");
///   db->Execute("SELECT ALL FROM EmpMol VALID AT 7");
class Database {
 public:
  /// Opens (creating if needed) the database in `dir`, replaying any WAL
  /// tail left by a crash.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const DatabaseOptions& options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- DDL (persisted immediately) ----

  Result<TypeId> CreateAtomType(const std::string& name,
                                std::vector<AttributeDef> attributes);
  Result<LinkTypeId> CreateLinkType(const std::string& name,
                                    const std::string& from_type,
                                    const std::string& to_type);
  Result<MoleculeTypeId> CreateMoleculeType(
      const std::string& name, const std::string& root_type,
      const std::vector<std::pair<std::string, bool>>& edges);

  /// Creates a secondary index over `type_name`.`attr_name` and
  /// backfills it from the existing atom versions.
  Result<IndexId> CreateAttrIndex(const std::string& name,
                                  const std::string& type_name,
                                  const std::string& attr_name);

  // ---- the valid-time clock ----

  /// The database's NOW (a chronon). DML stamped "VALID FROM NOW" uses it
  /// and then advances it by one; explicit stamps pull it forward to
  /// stay monotone.
  Timestamp Now() const { return now_.load(std::memory_order_acquire); }
  void SetNow(Timestamp t) { now_.store(t, std::memory_order_release); }

  // ---- transactions ----

  /// Starts an explicit snapshot-isolation transaction (see
  /// transaction.h). Any number may be open concurrently — each reads
  /// at its own snapshot, buffers its writes, and validates
  /// first-committer-wins at Commit (the loser of a write-write race
  /// gets TxnConflict). Commits group their WAL fsyncs.
  Transaction Begin();

  /// The MQL transaction surface (BEGIN; / COMMIT; / ABORT; statements
  /// and the shell's .begin/.commit/.abort): at most one *session*
  /// transaction per Database. While it is open, DML statements buffer
  /// into it and SELECTs pin its snapshot.
  Status BeginSession();
  Status CommitSession();
  Status AbortSession();
  bool InSessionTxn() const {
    return session_txn_ != nullptr && session_txn_->active();
  }

  /// Number of explicit transactions currently open (session or
  /// programmatic); introspection for tests and the degradation paths.
  size_t ActiveTxns() const { return txn_manager_.active_txns(); }

  // ---- DML (auto-commit: WAL append, then apply) ----
  //
  // `from_now` marks a "VALID FROM NOW" stamp: the passed timestamp is
  // provisional and the operation is re-stamped to the clock's NOW
  // under the writer mutex when it is logged, so a concurrent commit
  // can never make it land at or before an already-pinned snapshot.

  /// Inserts a new atom; unlisted attributes are NULL. Returns its id.
  Result<AtomId> InsertAtom(
      const std::string& type_name,
      const std::vector<std::pair<std::string, Value>>& assignments,
      Timestamp from, bool from_now = false);

  /// Positional variant (all attributes, schema order).
  Result<AtomId> InsertAtomValues(const std::string& type_name,
                                  std::vector<Value> values, Timestamp from,
                                  bool from_now = false);

  /// Partial update: listed attributes change, the rest carry over.
  Status UpdateAtom(const std::string& type_name, AtomId id,
                    const std::vector<std::pair<std::string, Value>>&
                        assignments,
                    Timestamp from, bool from_now = false);

  /// Positional variant (all attributes, schema order).
  Status UpdateAtomValues(const std::string& type_name, AtomId id,
                          std::vector<Value> values, Timestamp from,
                          bool from_now = false);

  Status DeleteAtom(const std::string& type_name, AtomId id, Timestamp from,
                    bool from_now = false);

  Status Connect(const std::string& link_name, AtomId from_id, AtomId to_id,
                 Timestamp at, bool from_now = false);
  Status Disconnect(const std::string& link_name, AtomId from_id,
                    AtomId to_id, Timestamp at, bool from_now = false);

  // ---- queries ----

  /// Parses and executes one MQL statement.
  ///
  /// Implemented as Query() drained to completion, so its results are
  /// byte-identical to pulling the cursor yourself — this is just the
  /// convenient materialized surface.
  Result<ResultSet> Execute(const std::string& mql);

  /// Parses one MQL statement and opens a pull cursor over its result
  /// (see cursor.h for the lifecycle contract). SELECTs without
  /// aggregates/ORDER BY stream: a producer thread runs the executor
  /// against a bounded queue, so the first row is available while the
  /// rest are still being made and buffered memory stays flat no matter
  /// the result size. Pipeline breakers and non-SELECT statements
  /// execute eagerly and return a cursor over the finished result.
  /// Drain or Close the cursor before the next statement on this
  /// Database, and before destroying it.
  Result<std::unique_ptr<Cursor>> Query(const std::string& mql);

  /// Parses and executes a ';'-separated MQL script, stopping at the
  /// first error; returns one ResultSet per executed statement.
  Result<std::vector<ResultSet>> ExecuteScript(const std::string& mql);

  /// Executes a pre-parsed statement.
  Result<ResultSet> ExecuteStatement(const Statement& stmt);

  // ---- observability ----

  /// Explains `select_mql` (a SELECT, or an already EXPLAIN-wrapped
  /// statement). With `analyze` the query executes and the result is the
  /// full trace (per-operator wall time, store accesses, version-cache
  /// and buffer-pool hit rates, per-worker fan-out timings); without it,
  /// only the static plan is reported.
  Result<ResultSet> Explain(const std::string& select_mql,
                            bool analyze = true);

  /// The trace of the most recently executed SELECT (EXPLAIN ANALYZE's
  /// source of truth; also filled by plain SELECTs).
  const QueryStats& last_query_stats() const { return last_query_stats_; }

  /// Point-in-time copy of every registered metric of this database:
  /// store/pool/disk/WAL counters, query counters and latency histogram,
  /// version-cache totals, recovery gauges. Render with ToText()
  /// (Prometheus exposition style) or ToJson().
  tcob::MetricsSnapshot MetricsSnapshot() const {
    return metrics_.Snapshot();
  }

  /// The registry itself (tests register probes; exporters snapshot).
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Chrome/Perfetto trace_event JSON of the flight recorder's rings —
  /// the recent cross-subsystem event history (query/span/WAL/
  /// checkpoint/tier/pool/admission/cancel/budget/health/io events).
  /// Open the result in https://ui.perfetto.dev or chrome://tracing.
  std::string DumpTrace() const { return trace_rec_.DumpJson(); }

  /// DumpTrace() to `path` (best-effort stdio write; see
  /// TraceRecorder::DumpToFile).
  Status DumpTraceToFile(const std::string& path) const;

  /// The flight recorder (runtime toggles: the shell's `.trace`).
  TraceRecorder* trace_recorder() { return &trace_rec_; }
  const TraceRecorder& trace_recorder() const { return trace_rec_; }

  // ---- maintenance ----

  /// Temporal vacuuming: physically removes every atom version, link
  /// interval and index entry that ended at or before `cutoff`.
  /// Time-slice and history queries at instants >= cutoff are
  /// unaffected; queries before the cutoff lose their data (that is the
  /// point). Wrapped in checkpoints so the WAL never references
  /// vacuumed state. Returns the number of atom versions removed.
  Result<uint64_t> VacuumBefore(Timestamp cutoff);

  /// Cold-history migration: moves every atom version whose validity
  /// ended at or before NOW - tiering.cold_age into the cold tier's
  /// delta-compressed segments and releases it from the hot store.
  /// No-op (returns 0) when tiering is disabled. Wrapped in checkpoints
  /// like VacuumBefore — the WAL never references a half-migrated store,
  /// and a crash mid-migration recovers to the pre-migration checkpoint.
  /// Returns the number of versions migrated.
  Result<uint64_t> TierMigrate();

  // ---- durability ----

  /// Flushes all state and truncates the WAL.
  Status Checkpoint();

  /// Flushes dirty pages (without truncating the WAL).
  Status Flush();

  /// Exhaustive offline-style integrity check, cheapest first: raw
  /// checksum scan of every page of every file, then per-type store
  /// structure (interval well-formedness, timelines, B+-trees,
  /// index-to-heap resolution), link adjacency mirroring, and attribute
  /// index structure. Read-only; returns Corruption naming the first
  /// violation (file and page for checksum failures).
  Status VerifyIntegrity();

  /// Not-OK once a write to stable storage has failed: the process can
  /// no longer tell what is durable, so every subsequent mutation
  /// (DML, DDL, checkpoint) is refused with this status while reads
  /// continue (the kReadOnly rung of the health ladder). Recovery paths:
  /// TryRecover() in place, or discard this instance and re-Open.
  const Status& health() const { return fail_stop_; }

  /// True once the instance entered fail-stop mode. Mutations after
  /// poisoning keep returning the *original* failure (wrapped by
  /// health()), never a generic error — callers can surface the root
  /// cause without having tracked the first failing call themselves.
  bool IsPoisoned() const { return !fail_stop_.ok(); }

  /// Where this instance sits on the degradation ladder.
  HealthState health_state() const {
    return health_state_.load(std::memory_order_acquire);
  }

  /// Attempts to climb back from kReadOnly to kHealthy: re-probes the
  /// I/O environment with a real write+sync+remove, and on success
  /// clears the fail-stop status and checkpoints (discarding any torn
  /// WAL tail the original failure left behind). Returns the probe (or
  /// checkpoint) failure and stays read-only if the environment is still
  /// refusing writes; refuses outright from kFailed (the in-memory image
  /// is untrusted — re-Open is the only way back). No-op when healthy.
  Status TryRecover();

  /// Adjusts the default SELECT deadline at runtime (the shell's
  /// `.timeout`). 0 disables it; queries already running are unaffected.
  void set_default_query_deadline(uint64_t micros) {
    options_.default_query_deadline_micros = micros;
  }

  /// The global query-memory budget (version-cache pins + buffered
  /// cursor batches charge against it).
  const ResourceBudget& memory_budget() const { return memory_budget_; }

  /// The admission gate (queue-depth / in-flight introspection).
  const AdmissionController& admission() const { return admission_; }

  /// The canonical logical image of the database as dump-format bytes:
  /// catalog, clock, every atom version sorted by (atom id, begin) and
  /// every link interval sorted by (from, to, begin). Identical logical
  /// content yields identical bytes under any storage strategy and any
  /// physical layout history (ExportDump writes exactly these bytes).
  Result<std::string> Dump();

  /// What WAL replay did when this instance was opened.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Sequence number of the last logical operation applied (0 = none
  /// yet). Crash tests use it as the oracle's prefix length.
  uint64_t applied_op_seq() const { return next_op_seq_ - 1; }

  // ---- introspection (benchmarks, tests) ----

  const Catalog& catalog() const { return catalog_; }
  TemporalAtomStore* store() { return store_.get(); }
  const TemporalAtomStore* store() const { return store_.get(); }
  /// The cold tier, or nullptr when tiering is disabled.
  ColdTier* cold_tier() { return cold_tier_.get(); }
  const ColdTier* cold_tier() const { return cold_tier_.get(); }
  LinkStore* links() { return links_.get(); }
  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  WriteAheadLog* wal() { return wal_.get(); }
  AttrIndexManager* attr_indexes() { return attr_indexes_.get(); }
  Materializer materializer() const {
    return Materializer(&catalog_, store_.get(), links_.get(),
                        query_pool_.get());
  }
  const DatabaseOptions& options() const { return options_; }

  /// Coerces + positions named assignments against a type's schema;
  /// `base` supplies carried-over values for partial updates (nullptr
  /// means unlisted attributes become NULL). Shared with Transaction.
  static Result<std::vector<Value>> ResolveAssignmentsFor(
      const AtomTypeDef& type,
      const std::vector<std::pair<std::string, Value>>& assignments,
      const std::vector<Value>* base);

 private:
  friend class Transaction;
  // Dump/restore needs the logical-apply path and catalog installation.
  friend Status ExportDump(Database* db, const std::string& path);
  friend Status ImportDump(Database* db, const std::string& path);

  Database(std::string dir, DatabaseOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// Hands out a fresh atom surrogate (used by Transaction buffering).
  AtomId AllocateAtomId() { return catalog_.NextAtomId(); }

  /// Transaction commit path: first-committer-wins validation against
  /// commits sequenced after `snapshot_seq`, then logs all `ops` plus a
  /// commit record and applies them under the writer mutex. The WAL
  /// fsync (when configured) happens *outside* the mutex via SyncBatch,
  /// so concurrent committers share one group fsync.
  Status CommitOps(uint64_t txn_id, const std::vector<WalOp>& ops,
                   uint64_t snapshot_seq);

  /// Transaction::Abort's notification: unregisters the transaction
  /// from conflict tracking and emits the abort trace event.
  void OnTxnAborted(uint64_t txn_id);

  Status Init();
  Status Recover();

  /// Checkpoint body; caller holds writer_mu_ (maintenance paths that
  /// already hold it call this directly).
  Status CheckpointLocked();

  /// Wires every component's counters into metrics_ (end of Init).
  void RegisterMetrics();

  /// ExecuteStatement with query-text context: `text` (may be null) and
  /// `parse_us` flow into the SELECT trace.
  Result<ResultSet> ExecuteStatementImpl(const Statement& stmt,
                                         const std::string* text,
                                         double parse_us);

  /// Traced SELECT execution: opens a cursor via NewSelectCursor and
  /// drains it — the materialized surface over the streaming engine.
  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt,
                                  const std::string* text, double parse_us);

  /// Execution state of one SELECT cursor (the executor, its trace, the
  /// counter baselines); lives until the cursor is finalized.
  struct SelectCursorContext;

  /// Opens a cursor over a SELECT: the streaming executor behind a
  /// producer thread when the statement can stream, a cursor over the
  /// eagerly-executed result otherwise. Either way the query trace is
  /// finalized (counter deltas, metrics, slow-query log,
  /// last_query_stats_) exactly once, when the cursor finishes.
  Result<std::unique_ptr<Cursor>> NewSelectCursor(const SelectStmt& stmt,
                                                  const std::string* text,
                                                  double parse_us);

  /// Stamps the open->now counter deltas and total time into the trace,
  /// updates the query metrics and slow-query log, and publishes the
  /// trace as last_query_stats_.
  void FinalizeSelectTrace(SelectCursorContext* ctx);

  /// Applies one logical operation to the stores (DML path and replay).
  Status ApplyOp(const WalOp& op);

  /// Stamps the next op_seq onto `op`, appends it to the WAL (syncing if
  /// configured), then applies it. A WAL failure poisons the database.
  Status LogAndApply(WalOp op);

  /// Refuses mutations when the open is read-only or the instance has
  /// degraded (fail-stop after an I/O failure).
  Status CheckWritable() const {
    if (options_.read_only) {
      return Status::InvalidArgument("database opened in read-only mode");
    }
    return fail_stop_;
  }

  /// Refuses even reads once the instance reached kFailed (the
  /// in-memory image is untrusted past a post-log apply failure).
  /// fail_stop_ is safe to read here: it is written before the
  /// release-store of kFailed and never again afterwards.
  Status CheckReadable() const {
    if (health_state_.load(std::memory_order_acquire) ==
        HealthState::kFailed) {
      return fail_stop_;
    }
    return Status::OK();
  }

  /// Best-effort automatic flight-recorder dump into the database dir
  /// (or options_.trace.dump_dir) when the instance degrades; `label`
  /// names the transition in the file name. Deliberately bypasses the
  /// IoEnv — it runs exactly when that environment is failing.
  void MaybeDumpTraceOnFailure(const char* label);

  /// Records the first stable-storage failure and degrades to kReadOnly;
  /// later mutations see it, reads keep serving.
  void Poison(const Status& cause);

  /// Hard failure: the in-memory image diverged from the log (an apply
  /// failed after its record was durably appended). Degrades to kFailed;
  /// every access is refused from here and TryRecover cannot help.
  void FailHard(const Status& cause);

  /// Meta file (clock.tcob): NOW and the checkpoint op_seq watermark,
  /// CRC-protected and replaced atomically.
  /// The meta file image: clock, op_seq watermark, CRC. Written to
  /// clock.tcob by SaveMeta and embedded in the page journal's commit
  /// record so recovery can reinstall the watermark that belongs to the
  /// journaled pages.
  std::string EncodeMeta() const;
  Status SaveMeta() const;
  Status LoadMeta();

  /// Persists the catalog atomically; poisons the database on failure.
  Status SaveCatalog();

  /// Coerces a literal to the attribute's declared type (int -> double /
  /// timestamp / id promotions; NULL re-typing).
  static Result<Value> Coerce(const Value& v, AttrType target);

  /// Bumps the clock past `from` so NOW stays monotone. Only writers
  /// (serialized by writer_mu_) store; readers load concurrently.
  void ObserveTimestamp(Timestamp from) {
    if (from >= now_.load(std::memory_order_relaxed)) {
      now_.store(from + 1, std::memory_order_release);
    }
  }

  std::string dir_;
  DatabaseOptions options_;
  IoEnv* env_ = nullptr;  // options_.env or IoEnv::Default(); not owned
  /// Wraps the base environment when options_.io_retry is enabled; env_
  /// then points at it.
  std::unique_ptr<RetryingIoEnv> retry_env_;
  /// Declared before the components so it outlives none of its
  /// registrants' updates; holds non-owning pointers into them and into
  /// the counters below (all destroyed together with this Database).
  MetricsRegistry metrics_;
  /// Flight recorder; declared before every component that holds a
  /// pointer into it (WAL, pool, cold tier, admission, retry env), so
  /// events emitted during their destruction still land in a live ring.
  TraceRecorder trace_rec_{options_.trace};
  Counter statements_total_;
  Counter queries_total_;
  Counter slow_queries_total_;
  Counter checkpoints_total_;
  Counter vcache_atom_hits_total_;
  Counter vcache_atom_misses_total_;
  Counter vcache_link_hits_total_;
  Counter vcache_link_misses_total_;
  Counter vcache_versions_pinned_total_;
  Counter query_cancelled_total_;
  Counter query_deadline_exceeded_total_;
  Counter txns_begun_total_;
  Counter txns_committed_total_;
  Counter txns_aborted_total_;
  Counter txn_conflicts_total_;
  Histogram query_latency_us_{Histogram::LatencyBucketsUs()};
  /// Global query-memory budget; cap from options_ (0 = unlimited).
  ResourceBudget memory_budget_{options_.memory_budget_bytes};
  /// Admission gate; disabled when options_.max_inflight_queries == 0.
  AdmissionController admission_{options_.max_inflight_queries};
  QueryStats last_query_stats_;
  Catalog catalog_;
  /// Declared before disk_: the manager holds a raw pointer into it.
  std::unique_ptr<PageJournal> journal_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TemporalAtomStore> store_;
  /// Cold-history tier; non-null iff options_.tiering.enabled. Attached
  /// to store_, so declared after it (destroyed first; the store never
  /// dereferences it during destruction).
  std::unique_ptr<ColdTier> cold_tier_;
  std::unique_ptr<LinkStore> links_;
  std::unique_ptr<AttrIndexManager> attr_indexes_;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Query-path worker pool; null when options_.parallelism resolves
  /// to 1 (serial execution).
  std::unique_ptr<ThreadPool> query_pool_;
  /// Serializes every mutation: auto-commit DML, transaction commits
  /// (validation + append + apply; the fsync escapes it), DDL,
  /// checkpoints, and maintenance. Reads never take it.
  mutable std::mutex writer_mu_;
  /// Commit clock, active-transaction registry, and the pruned
  /// write-set log behind first-committer-wins validation.
  TxnManager txn_manager_;
  /// Liveness token handed to every Transaction as a weak_ptr; reset
  /// first thing in the destructor, so a Transaction that outlives this
  /// Database degrades to FailedPrecondition instead of dangling.
  std::shared_ptr<void> alive_token_ = std::make_shared<int>(0);
  /// The MQL session transaction (BEGIN;..COMMIT;), when one is open.
  std::unique_ptr<Transaction> session_txn_;
  std::atomic<Timestamp> now_{1};
  /// Transaction ids are not persisted, so Recover() advances this past
  /// every txn id observed in the WAL: a fresh id may otherwise collide
  /// with an orphaned transaction's records still physically in the log
  /// and make a later recovery replay them as committed.
  std::atomic<uint64_t> next_txn_id_{1};
  /// Query ids stamped into trace events (per instance, never reused).
  std::atomic<uint64_t> next_query_id_{1};
  /// Sequence of automatic failure dumps (unique file names).
  uint64_t trace_dump_seq_ = 0;
  /// Sequence number the next logical operation will carry. Persisted
  /// into the meta file by Checkpoint; replay skips operations below the
  /// persisted base, making recovery idempotent under re-crash.
  uint64_t next_op_seq_ = 1;
  /// OK until a stable-storage write fails; then the first failure —
  /// held until TryRecover clears it (kReadOnly) or forever (kFailed).
  Status fail_stop_ = Status::OK();
  /// Where this instance sits on the degradation ladder. Atomic so the
  /// read path can consult it while a committer degrades the instance.
  std::atomic<HealthState> health_state_{HealthState::kHealthy};
  RecoveryStats recovery_stats_;
  /// Set once Init (including recovery) succeeds. A Database whose open
  /// failed must not write anything on destruction — the on-disk state
  /// it saw is untrusted.
  bool initialized_ = false;
};

}  // namespace tcob

#endif  // TCOB_DB_DATABASE_H_
