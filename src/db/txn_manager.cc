#include "db/txn_manager.h"

#include <algorithm>
#include <string>

namespace tcob {

TxnWriteKey WriteKeyForOp(const WalOp& op) {
  TxnWriteKey key;
  switch (op.type) {
    case WalOpType::kInsertAtom:
    case WalOpType::kUpdateAtom:
    case WalOpType::kDeleteAtom:
      key.kind = TxnWriteKey::Kind::kAtom;
      key.a = op.atom_id;
      return key;
    case WalOpType::kConnect:
    case WalOpType::kDisconnect:
      key.kind = TxnWriteKey::Kind::kLink;
      key.a = op.link_type;
      key.b = op.from_id;
      key.c = op.to_id;
      return key;
    case WalOpType::kCommit:
    case WalOpType::kCheckpoint:
      break;
  }
  return key;
}

uint64_t TxnManager::BeginTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lk(mu_);
  active_[txn_id] = commit_seq_;
  return commit_seq_;
}

void TxnManager::EndTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lk(mu_);
  active_.erase(txn_id);
  PruneLocked();
}

Status TxnManager::CheckConflict(
    uint64_t snapshot_seq, const std::vector<TxnWriteKey>& keys) const {
  std::lock_guard<std::mutex> lk(mu_);
  // The log is ascending by seq and pruned to the oldest active
  // snapshot, so scan backwards and stop at the snapshot horizon.
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->seq <= snapshot_seq) break;
    for (const TxnWriteKey& mine : keys) {
      if (std::binary_search(it->keys.begin(), it->keys.end(), mine)) {
        const char* what =
            mine.kind == TxnWriteKey::Kind::kAtom ? "atom " : "link type ";
        return Status::TxnConflict(
            "write-write conflict on " + std::string(what) +
            std::to_string(mine.a) +
            " committed after this transaction's snapshot");
      }
    }
  }
  return Status::OK();
}

uint64_t TxnManager::Commit(uint64_t txn_id, std::vector<TxnWriteKey> keys) {
  std::lock_guard<std::mutex> lk(mu_);
  active_.erase(txn_id);
  return RecordLocked(std::move(keys));
}

uint64_t TxnManager::CommitAuto(const TxnWriteKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  return RecordLocked({key});
}

uint64_t TxnManager::commit_seq() const {
  std::lock_guard<std::mutex> lk(mu_);
  return commit_seq_;
}

size_t TxnManager::active_txns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.size();
}

size_t TxnManager::retained_commits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_.size();
}

uint64_t TxnManager::RecordLocked(std::vector<TxnWriteKey> keys) {
  const uint64_t seq = ++commit_seq_;
  // Write-sets are only conflict sources while a transaction with an
  // older snapshot is still open.
  if (!active_.empty()) {
    std::sort(keys.begin(), keys.end());
    log_.push_back(CommitEntry{seq, std::move(keys)});
  }
  PruneLocked();
  return seq;
}

void TxnManager::PruneLocked() {
  if (active_.empty()) {
    log_.clear();
    return;
  }
  uint64_t oldest = active_.begin()->second;
  for (const auto& [id, snap] : active_) oldest = std::min(oldest, snap);
  // An entry at or below every active snapshot is visible to all of
  // them and can never conflict again.
  while (!log_.empty() && log_.front().seq <= oldest) log_.pop_front();
}

}  // namespace tcob
