#include "db/transaction.h"

#include "common/logging.h"
#include "db/database.h"

namespace tcob {

Transaction::~Transaction() {
  if (active_) Abort();
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      db_alive_(std::move(other.db_alive_)),
      txn_id_(other.txn_id_),
      snapshot_(other.snapshot_),
      snapshot_seq_(other.snapshot_seq_),
      local_now_(other.local_now_),
      active_(other.active_),
      ops_(std::move(other.ops_)),
      atoms_(std::move(other.atoms_)),
      links_(std::move(other.links_)) {
  // The moved-from shell must not abort (and unregister) the live
  // transaction from its destructor.
  other.active_ = false;
}

Status Transaction::CheckUsable() const {
  if (!active_) return Status::InvalidArgument("transaction not active");
  if (db_alive_.expired()) {
    return Status::FailedPrecondition(
        "transaction " + std::to_string(txn_id_) +
        " outlived its database; it can no longer be used");
  }
  return Status::OK();
}

void Transaction::Abort() {
  if (active_) {
    // Unregister from the conflict tracker — unless the database is
    // already gone, in which case the registry died with it.
    std::shared_ptr<void> alive = db_alive_.lock();
    if (alive != nullptr) db_->OnTxnAborted(txn_id_);
  }
  ops_.clear();
  atoms_.clear();
  links_.clear();
  active_ = false;
}

Result<Transaction::AtomOverlay*> Transaction::OverlayFor(
    const std::string& type_name, AtomId id, Timestamp as_of) {
  auto it = atoms_.find(id);
  if (it != atoms_.end()) return &it->second;
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  AtomOverlay overlay;
  overlay.type = type->id;
  Result<std::vector<AtomVersion>> versions =
      db_->store()->GetVersions(*type, id, Interval::All());
  if (versions.ok() && !versions.value().empty()) {
    // Snapshot read: versions beginning after the snapshot were
    // committed after Begin() and stay invisible; a version closed
    // after the snapshot is still open as far as this transaction can
    // see (the closing writer wins the conflict check if we collide).
    std::vector<AtomVersion>& all = versions.value();
    const AtomVersion* visible = nullptr;
    for (const AtomVersion& v : all) {
      if (v.valid.begin <= snapshot_) visible = &v;
    }
    if (visible != nullptr) {
      const bool live_at_snapshot =
          visible->valid.open_ended() || visible->valid.end > snapshot_;
      overlay.exists = true;
      overlay.live = live_at_snapshot;
      overlay.live_begin = visible->valid.begin;
      overlay.last_end = live_at_snapshot ? kMinTimestamp
                                          : visible->valid.end;
      overlay.attrs = visible->attrs;
    }
  } else if (!versions.ok() && !versions.status().IsNotFound()) {
    return versions.status();
  }
  (void)as_of;
  auto [pos, inserted] = atoms_.emplace(id, std::move(overlay));
  (void)inserted;
  return &pos->second;
}

Result<Transaction::LinkOverlay*> Transaction::LinkOverlayFor(
    const std::string& link_name, LinkTypeId link_id, AtomId from, AtomId to,
    Timestamp as_of) {
  (void)as_of;
  auto key = std::make_tuple(link_id, from, to);
  auto it = links_.find(key);
  if (it != links_.end()) return &it->second;
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        db_->catalog().GetLinkTypeByName(link_name));
  LinkOverlay overlay;
  overlay.initialized_from_store = true;
  TCOB_ASSIGN_OR_RETURN(
      auto spans, db_->links()->NeighborsIn(*link, from, /*forward=*/true,
                                            Interval::All()));
  for (const auto& [other, valid] : spans) {
    if (other != to) continue;
    // Same snapshot rule as atoms: intervals beginning after the
    // snapshot do not exist yet, and one closed after it is still open
    // from this transaction's viewpoint.
    if (valid.begin > snapshot_) continue;
    if (valid.open_ended() || valid.end > snapshot_) {
      overlay.open = true;
      overlay.open_begin = valid.begin;
    } else if (valid.end > overlay.last_end) {
      overlay.last_end = valid.end;
    }
  }
  auto [pos, inserted] = links_.emplace(key, overlay);
  (void)inserted;
  return &pos->second;
}

Result<AtomId> Transaction::InsertAtom(
    const std::string& type_name,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from, bool from_now) {
  TCOB_RETURN_NOT_OK(CheckUsable());
  if (from_now) from = local_now_;
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(
      std::vector<Value> values,
      Database::ResolveAssignmentsFor(*type, assignments, nullptr));
  AtomId id = db_->AllocateAtomId();
  AtomOverlay overlay;
  overlay.type = type->id;
  overlay.exists = true;
  overlay.live = true;
  overlay.live_begin = from;
  overlay.attrs = values;
  atoms_[id] = std::move(overlay);

  WalOp op;
  op.type = WalOpType::kInsertAtom;
  op.txn_id = txn_id_;
  op.stamped_now = from_now;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  ops_.push_back(std::move(op));
  ObserveLocal(from);
  return id;
}

Status Transaction::UpdateAtom(
    const std::string& type_name, AtomId id,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from, bool from_now) {
  TCOB_RETURN_NOT_OK(CheckUsable());
  if (from_now) from = local_now_;
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(AtomOverlay * overlay,
                        OverlayFor(type_name, id, from));
  if (!overlay->exists) {
    return Status::NotFound("update of unknown atom " + std::to_string(id));
  }
  if (!overlay->live) {
    return Status::InvalidArgument("update of a dead atom");
  }
  if (from <= overlay->live_begin) {
    return Status::InvalidArgument(
        "update must be after the live version's begin");
  }
  TCOB_ASSIGN_OR_RETURN(std::vector<Value> values,
                        Database::ResolveAssignmentsFor(*type, assignments,
                                                        &overlay->attrs));
  overlay->live_begin = from;
  overlay->attrs = values;

  WalOp op;
  op.type = WalOpType::kUpdateAtom;
  op.txn_id = txn_id_;
  op.stamped_now = from_now;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  ops_.push_back(std::move(op));
  ObserveLocal(from);
  return Status::OK();
}

Status Transaction::DeleteAtom(const std::string& type_name, AtomId id,
                               Timestamp from, bool from_now) {
  TCOB_RETURN_NOT_OK(CheckUsable());
  if (from_now) from = local_now_;
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(AtomOverlay * overlay,
                        OverlayFor(type_name, id, from));
  if (!overlay->exists) {
    return Status::NotFound("delete of unknown atom " + std::to_string(id));
  }
  if (!overlay->live) {
    return Status::InvalidArgument("delete of a dead atom");
  }
  if (from <= overlay->live_begin) {
    return Status::InvalidArgument(
        "delete must be after the live version's begin");
  }
  overlay->live = false;
  overlay->last_end = from;

  WalOp op;
  op.type = WalOpType::kDeleteAtom;
  op.txn_id = txn_id_;
  op.stamped_now = from_now;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  ops_.push_back(std::move(op));
  ObserveLocal(from);
  return Status::OK();
}

Status Transaction::Connect(const std::string& link_name, AtomId from_id,
                            AtomId to_id, Timestamp at, bool from_now) {
  TCOB_RETURN_NOT_OK(CheckUsable());
  if (from_now) at = local_now_;
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        db_->catalog().GetLinkTypeByName(link_name));
  TCOB_ASSIGN_OR_RETURN(
      LinkOverlay * overlay,
      LinkOverlayFor(link_name, link->id, from_id, to_id, at));
  if (overlay->open) {
    return Status::AlreadyExists("link already connected");
  }
  if (at < overlay->last_end) {
    return Status::InvalidArgument(
        "connect overlaps a previous connection interval");
  }
  overlay->open = true;
  overlay->open_begin = at;

  WalOp op;
  op.type = WalOpType::kConnect;
  op.txn_id = txn_id_;
  op.stamped_now = from_now;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  ops_.push_back(std::move(op));
  ObserveLocal(at);
  return Status::OK();
}

Status Transaction::Disconnect(const std::string& link_name, AtomId from_id,
                               AtomId to_id, Timestamp at, bool from_now) {
  TCOB_RETURN_NOT_OK(CheckUsable());
  if (from_now) at = local_now_;
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        db_->catalog().GetLinkTypeByName(link_name));
  TCOB_ASSIGN_OR_RETURN(
      LinkOverlay * overlay,
      LinkOverlayFor(link_name, link->id, from_id, to_id, at));
  if (!overlay->open) {
    return Status::NotFound("no open connection to disconnect");
  }
  if (at <= overlay->open_begin) {
    return Status::InvalidArgument("disconnect before the connection began");
  }
  overlay->open = false;
  overlay->last_end = at;

  WalOp op;
  op.type = WalOpType::kDisconnect;
  op.txn_id = txn_id_;
  op.stamped_now = from_now;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  ops_.push_back(std::move(op));
  ObserveLocal(at);
  return Status::OK();
}

Status Transaction::Commit() {
  TCOB_RETURN_NOT_OK(CheckUsable());
  Status committed = db_->CommitOps(txn_id_, ops_, snapshot_seq_);
  active_ = false;
  ops_.clear();
  atoms_.clear();
  links_.clear();
  return committed;
}

}  // namespace tcob
