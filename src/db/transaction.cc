#include "db/transaction.h"

#include "common/logging.h"
#include "db/database.h"

namespace tcob {

Transaction::~Transaction() {
  if (active_) Abort();
}

void Transaction::Abort() {
  ops_.clear();
  atoms_.clear();
  links_.clear();
  active_ = false;
}

Result<Transaction::AtomOverlay*> Transaction::OverlayFor(
    const std::string& type_name, AtomId id, Timestamp as_of) {
  auto it = atoms_.find(id);
  if (it != atoms_.end()) return &it->second;
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  AtomOverlay overlay;
  overlay.type = type->id;
  Result<std::vector<AtomVersion>> versions =
      db_->store()->GetVersions(*type, id, Interval::All());
  if (versions.ok() && !versions.value().empty()) {
    const AtomVersion& last = versions.value().back();
    overlay.exists = true;
    overlay.live = last.valid.open_ended();
    overlay.live_begin = last.valid.begin;
    overlay.last_end = last.valid.open_ended() ? kMinTimestamp
                                               : last.valid.end;
    overlay.attrs = last.attrs;
  } else if (!versions.ok() && !versions.status().IsNotFound()) {
    return versions.status();
  }
  (void)as_of;
  auto [pos, inserted] = atoms_.emplace(id, std::move(overlay));
  (void)inserted;
  return &pos->second;
}

Result<Transaction::LinkOverlay*> Transaction::LinkOverlayFor(
    const std::string& link_name, LinkTypeId link_id, AtomId from, AtomId to,
    Timestamp as_of) {
  (void)as_of;
  auto key = std::make_tuple(link_id, from, to);
  auto it = links_.find(key);
  if (it != links_.end()) return &it->second;
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        db_->catalog().GetLinkTypeByName(link_name));
  LinkOverlay overlay;
  overlay.initialized_from_store = true;
  TCOB_ASSIGN_OR_RETURN(
      auto spans, db_->links()->NeighborsIn(*link, from, /*forward=*/true,
                                            Interval::All()));
  for (const auto& [other, valid] : spans) {
    if (other != to) continue;
    if (valid.open_ended()) {
      overlay.open = true;
      overlay.open_begin = valid.begin;
    } else if (valid.end > overlay.last_end) {
      overlay.last_end = valid.end;
    }
  }
  auto [pos, inserted] = links_.emplace(key, overlay);
  (void)inserted;
  return &pos->second;
}

Result<AtomId> Transaction::InsertAtom(
    const std::string& type_name,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(
      std::vector<Value> values,
      Database::ResolveAssignmentsFor(*type, assignments, nullptr));
  AtomId id = db_->AllocateAtomId();
  AtomOverlay overlay;
  overlay.type = type->id;
  overlay.exists = true;
  overlay.live = true;
  overlay.live_begin = from;
  overlay.attrs = values;
  atoms_[id] = std::move(overlay);

  WalOp op;
  op.type = WalOpType::kInsertAtom;
  op.txn_id = txn_id_;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  ops_.push_back(std::move(op));
  return id;
}

Status Transaction::UpdateAtom(
    const std::string& type_name, AtomId id,
    const std::vector<std::pair<std::string, Value>>& assignments,
    Timestamp from) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(AtomOverlay * overlay,
                        OverlayFor(type_name, id, from));
  if (!overlay->exists) {
    return Status::NotFound("update of unknown atom " + std::to_string(id));
  }
  if (!overlay->live) {
    return Status::InvalidArgument("update of a dead atom");
  }
  if (from <= overlay->live_begin) {
    return Status::InvalidArgument(
        "update must be after the live version's begin");
  }
  TCOB_ASSIGN_OR_RETURN(std::vector<Value> values,
                        Database::ResolveAssignmentsFor(*type, assignments,
                                                        &overlay->attrs));
  overlay->live_begin = from;
  overlay->attrs = values;

  WalOp op;
  op.type = WalOpType::kUpdateAtom;
  op.txn_id = txn_id_;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  op.attrs = std::move(values);
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::DeleteAtom(const std::string& type_name, AtomId id,
                               Timestamp from) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* type,
                        db_->catalog().GetAtomTypeByName(type_name));
  TCOB_ASSIGN_OR_RETURN(AtomOverlay * overlay,
                        OverlayFor(type_name, id, from));
  if (!overlay->exists) {
    return Status::NotFound("delete of unknown atom " + std::to_string(id));
  }
  if (!overlay->live) {
    return Status::InvalidArgument("delete of a dead atom");
  }
  if (from <= overlay->live_begin) {
    return Status::InvalidArgument(
        "delete must be after the live version's begin");
  }
  overlay->live = false;
  overlay->last_end = from;

  WalOp op;
  op.type = WalOpType::kDeleteAtom;
  op.txn_id = txn_id_;
  op.atom_id = id;
  op.atom_type = type->id;
  op.valid_from = from;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::Connect(const std::string& link_name, AtomId from_id,
                            AtomId to_id, Timestamp at) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        db_->catalog().GetLinkTypeByName(link_name));
  TCOB_ASSIGN_OR_RETURN(
      LinkOverlay * overlay,
      LinkOverlayFor(link_name, link->id, from_id, to_id, at));
  if (overlay->open) {
    return Status::AlreadyExists("link already connected");
  }
  if (at < overlay->last_end) {
    return Status::InvalidArgument(
        "connect overlaps a previous connection interval");
  }
  overlay->open = true;
  overlay->open_begin = at;

  WalOp op;
  op.type = WalOpType::kConnect;
  op.txn_id = txn_id_;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::Disconnect(const std::string& link_name, AtomId from_id,
                               AtomId to_id, Timestamp at) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                        db_->catalog().GetLinkTypeByName(link_name));
  TCOB_ASSIGN_OR_RETURN(
      LinkOverlay * overlay,
      LinkOverlayFor(link_name, link->id, from_id, to_id, at));
  if (!overlay->open) {
    return Status::NotFound("no open connection to disconnect");
  }
  if (at <= overlay->open_begin) {
    return Status::InvalidArgument("disconnect before the connection began");
  }
  overlay->open = false;
  overlay->last_end = at;

  WalOp op;
  op.type = WalOpType::kDisconnect;
  op.txn_id = txn_id_;
  op.link_type = link->id;
  op.from_id = from_id;
  op.to_id = to_id;
  op.valid_from = at;
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::Commit() {
  if (!active_) return Status::InvalidArgument("transaction not active");
  Status committed = db_->CommitOps(txn_id_, ops_);
  active_ = false;
  ops_.clear();
  atoms_.clear();
  links_.clear();
  return committed;
}

}  // namespace tcob
