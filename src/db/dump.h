#ifndef TCOB_DB_DUMP_H_
#define TCOB_DB_DUMP_H_

#include <string>

#include "common/result.h"

namespace tcob {

class Database;

/// Portable full-database dump / restore.
///
/// The dump file carries the catalog, the valid-time clock, every atom
/// version of every type, and every link interval — enough to rebuild a
/// bit-equivalent *logical* database under **any** storage strategy.
/// This doubles as the strategy-migration tool:
///
///   auto src = Database::Open(dir_a, {.strategy = kSnapshot}).value();
///   ExportDump(src.get(), "/tmp/db.tcobdump");
///   auto dst = Database::Open(dir_b, {.strategy = kSeparated}).value();
///   ImportDump(dst.get(), "/tmp/db.tcobdump");
///
/// Import replays the dump through the normal logical-operation path, so
/// WAL logging, attribute-index maintenance and id-watermark bookkeeping
/// all apply; the target database must be empty (fresh directory).
Status ExportDump(Database* db, const std::string& path);
Status ImportDump(Database* db, const std::string& path);

}  // namespace tcob

#endif  // TCOB_DB_DUMP_H_
