#ifndef TCOB_DB_TXN_MANAGER_H_
#define TCOB_DB_TXN_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "wal/log_record.h"

namespace tcob {

/// One mutated entity — the unit of write-write conflict detection
/// under snapshot isolation. Atoms conflict on their surrogate id,
/// link pairs on the (link type, from, to) triple.
struct TxnWriteKey {
  enum class Kind : uint8_t { kAtom = 0, kLink = 1 };
  Kind kind = Kind::kAtom;
  uint64_t a = 0;  // atom id, or link type id
  uint64_t b = 0;  // link from id
  uint64_t c = 0;  // link to id

  bool operator<(const TxnWriteKey& o) const {
    return std::tie(kind, a, b, c) < std::tie(o.kind, o.a, o.b, o.c);
  }
  bool operator==(const TxnWriteKey& o) const {
    return kind == o.kind && a == o.a && b == o.b && c == o.c;
  }
};

/// The conflict key of one logged operation (kCommit/kCheckpoint
/// records carry no key and must not be passed here).
TxnWriteKey WriteKeyForOp(const WalOp& op);

/// Snapshot-isolation bookkeeping for the Database: a commit clock,
/// the set of active transactions (with the commit sequence each one
/// snapshots), and a pruned log of committed write-sets used for
/// first-committer-wins validation.
///
/// A transaction beginning at commit sequence S conflicts with exactly
/// the commits sequenced after S that wrote a key it also writes; the
/// first committer wins and the later one aborts with TxnConflict.
/// Auto-committed statements participate as single-key commits, so an
/// open transaction cannot silently overwrite one.
///
/// Thread-safe: Begin/End run from any thread, Check/Commit from the
/// Database's writer path; all take an internal mutex.
class TxnManager {
 public:
  /// Registers `txn_id` as active; returns the commit sequence its
  /// snapshot covers (every commit up to and including it is visible).
  uint64_t BeginTxn(uint64_t txn_id);

  /// Unregisters `txn_id` (abort, conflict loss, or a write-free
  /// commit) and prunes log entries no remaining snapshot can reach.
  void EndTxn(uint64_t txn_id);

  /// First-committer-wins validation: TxnConflict iff any commit
  /// sequenced after `snapshot_seq` wrote one of `keys`.
  Status CheckConflict(uint64_t snapshot_seq,
                       const std::vector<TxnWriteKey>& keys) const;

  /// Records a successful commit of `keys`, unregisters the
  /// transaction, and prunes. Returns the assigned commit sequence.
  uint64_t Commit(uint64_t txn_id, std::vector<TxnWriteKey> keys);

  /// Records an auto-committed statement's single-key write-set (it
  /// was never registered as an active transaction).
  uint64_t CommitAuto(const TxnWriteKey& key);

  /// The sequence of the newest recorded commit (0 = none yet).
  uint64_t commit_seq() const;

  /// Number of currently registered transactions.
  size_t active_txns() const;

  /// Number of write-sets currently retained for validation
  /// (introspection: shrinks to zero whenever no transaction is open).
  size_t retained_commits() const;

 private:
  /// One validated commit: its sequence and what it wrote (sorted).
  struct CommitEntry {
    uint64_t seq = 0;
    std::vector<TxnWriteKey> keys;
  };

  uint64_t RecordLocked(std::vector<TxnWriteKey> keys);
  void PruneLocked();

  mutable std::mutex mu_;
  uint64_t commit_seq_ = 0;
  /// txn id -> snapshot commit sequence.
  std::map<uint64_t, uint64_t> active_;
  /// Committed write-sets, ascending by seq; pruned to the oldest
  /// active snapshot.
  std::deque<CommitEntry> log_;
};

}  // namespace tcob

#endif  // TCOB_DB_TXN_MANAGER_H_
