#ifndef TCOB_DB_TRANSACTION_H_
#define TCOB_DB_TRANSACTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "record/value.h"
#include "time/timestamp.h"
#include "wal/log_record.h"

namespace tcob {

class Database;

/// An explicit multi-statement transaction.
///
/// Operations are validated eagerly (against the committed state plus
/// this transaction's own pending effects) and buffered; nothing touches
/// the stores or the WAL until Commit. Commit appends every operation
/// plus a commit record to the WAL in one batch (one fsync when
/// configured) and then applies the operations — which cannot fail,
/// because validation already held and the Database is single-threaded.
/// Abort simply discards the buffer.
///
/// Reads through the Database during an open transaction see the
/// *committed* state only (the buffer is not visible to queries).
///
/// Usage:
///   Transaction txn = db->Begin();
///   TCOB_ASSIGN_OR_RETURN(AtomId id, txn.InsertAtom("Emp", {...}, t));
///   TCOB_RETURN_NOT_OK(txn.Connect("DeptEmp", dept, id, t));
///   TCOB_RETURN_NOT_OK(txn.Commit());
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&&) noexcept = default;

  /// Buffers an insert; returns the atom id the insert will create.
  Result<AtomId> InsertAtom(
      const std::string& type_name,
      const std::vector<std::pair<std::string, Value>>& assignments,
      Timestamp from);

  /// Buffers a partial update (unlisted attributes carry over, seeing
  /// this transaction's own pending updates).
  Status UpdateAtom(const std::string& type_name, AtomId id,
                    const std::vector<std::pair<std::string, Value>>&
                        assignments,
                    Timestamp from);

  Status DeleteAtom(const std::string& type_name, AtomId id, Timestamp from);

  Status Connect(const std::string& link_name, AtomId from_id, AtomId to_id,
                 Timestamp at);
  Status Disconnect(const std::string& link_name, AtomId from_id,
                    AtomId to_id, Timestamp at);

  /// Logs and applies the buffered operations atomically.
  Status Commit();

  /// Discards the buffered operations.
  void Abort();

  bool active() const { return active_; }
  size_t pending_ops() const { return ops_.size(); }
  uint64_t id() const { return txn_id_; }

 private:
  friend class Database;
  Transaction(Database* db, uint64_t txn_id) : db_(db), txn_id_(txn_id) {}

  /// Pending per-atom view: what the atom will look like if this
  /// transaction commits. Lazily initialized from the committed state.
  struct AtomOverlay {
    bool exists = false;  // has any version (committed or pending)
    bool live = false;
    Timestamp live_begin = kMinTimestamp;
    Timestamp last_end = kMinTimestamp;  // end of newest closed version
    TypeId type = kInvalidTypeId;
    std::vector<Value> attrs;  // of the live version
  };

  /// Pending link-pair view.
  struct LinkOverlay {
    bool open = false;
    Timestamp open_begin = kMinTimestamp;
    Timestamp last_end = kMinTimestamp;
    bool initialized_from_store = false;
  };

  Result<AtomOverlay*> OverlayFor(const std::string& type_name, AtomId id,
                                  Timestamp as_of);
  Result<LinkOverlay*> LinkOverlayFor(const std::string& link_name,
                                      LinkTypeId link_id, AtomId from,
                                      AtomId to, Timestamp as_of);

  Database* db_;
  uint64_t txn_id_;
  bool active_ = true;
  std::vector<WalOp> ops_;
  std::map<AtomId, AtomOverlay> atoms_;
  std::map<std::tuple<LinkTypeId, AtomId, AtomId>, LinkOverlay> links_;
};

}  // namespace tcob

#endif  // TCOB_DB_TRANSACTION_H_
