#ifndef TCOB_DB_TRANSACTION_H_
#define TCOB_DB_TRANSACTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "record/value.h"
#include "time/timestamp.h"
#include "wal/log_record.h"

namespace tcob {

class Database;

/// An explicit multi-statement transaction under snapshot isolation.
///
/// Begin() captures a snapshot: the valid-time instant just before the
/// database's NOW and the commit sequence current at that moment.
/// Operations are validated eagerly against that snapshot (plus this
/// transaction's own pending effects, via the overlays below) and
/// buffered; nothing touches the stores or the WAL until Commit.
/// VALID FROM NOW operations carry a provisional stamp from the
/// transaction-local clock while buffered and are re-stamped to the
/// commit instant inside Commit's critical section, so a commit can
/// never land at or before a snapshot pinned while it was buffering.
///
/// Commit runs first-committer-wins validation: if any transaction (or
/// auto-committed statement) that committed after this snapshot wrote
/// an atom or link pair this transaction also writes, Commit aborts
/// with TxnConflict and the other writer's effects stand. Otherwise
/// every operation plus a commit record is appended to the WAL and
/// applied; durability is one group fsync shared with concurrent
/// committers (see WriteAheadLog::SyncBatch). Abort discards the
/// buffer without a trace.
///
/// Reads through the Database during an open transaction see committed
/// state only; SELECTs routed through the session transaction pin its
/// snapshot (concurrent commits stay invisible until this transaction
/// ends). The atom timelines themselves serve as the version chain —
/// a snapshot read is simply a time-slice at the snapshot instant.
///
/// A Transaction may outlive its Database: every operation on it then
/// fails with FailedPrecondition instead of touching freed memory.
///
/// Usage:
///   Transaction txn = db->Begin();
///   TCOB_ASSIGN_OR_RETURN(AtomId id, txn.InsertAtom("Emp", {...}, t));
///   TCOB_RETURN_NOT_OK(txn.Connect("DeptEmp", dept, id, t));
///   TCOB_RETURN_NOT_OK(txn.Commit());  // may return TxnConflict
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  /// Moves deactivate the source so only one of the pair aborts or
  /// unregisters on destruction.
  Transaction(Transaction&& other) noexcept;

  /// Buffers an insert; returns the atom id the insert will create.
  /// With `from_now`, `from` is ignored: the operation is stamped with
  /// the transaction-local clock (see local_now()) and re-stamped to
  /// the commit instant when the transaction commits.
  Result<AtomId> InsertAtom(
      const std::string& type_name,
      const std::vector<std::pair<std::string, Value>>& assignments,
      Timestamp from, bool from_now = false);

  /// Buffers a partial update (unlisted attributes carry over, seeing
  /// this transaction's own pending updates).
  Status UpdateAtom(const std::string& type_name, AtomId id,
                    const std::vector<std::pair<std::string, Value>>&
                        assignments,
                    Timestamp from, bool from_now = false);

  Status DeleteAtom(const std::string& type_name, AtomId id, Timestamp from,
                    bool from_now = false);

  Status Connect(const std::string& link_name, AtomId from_id, AtomId to_id,
                 Timestamp at, bool from_now = false);
  Status Disconnect(const std::string& link_name, AtomId from_id,
                    AtomId to_id, Timestamp at, bool from_now = false);

  /// Validates against commits since the snapshot (TxnConflict if a
  /// write-write overlap lost the race), then logs and applies the
  /// buffered operations atomically. Win or lose, the transaction is
  /// finished afterwards.
  Status Commit();

  /// Discards the buffered operations.
  void Abort();

  bool active() const { return active_; }
  size_t pending_ops() const { return ops_.size(); }
  uint64_t id() const { return txn_id_; }

  /// The valid-time instant this transaction reads at: commits stamped
  /// after Begin() land strictly later and stay invisible.
  Timestamp snapshot() const { return snapshot_; }

  /// The transaction-local clock: the instant the next VALID FROM NOW
  /// operation buffered into this transaction will provisionally get.
  /// It starts just after the snapshot and advances like the database
  /// clock (a buffered stamp pulls it past itself), but is *pinned*
  /// against concurrent committers — the definitive stamps of the
  /// NOW-relative operations are assigned at Commit, under the writer
  /// mutex (see Database::CommitOps).
  Timestamp local_now() const { return local_now_; }

 private:
  friend class Database;
  Transaction(Database* db, uint64_t txn_id, Timestamp snapshot,
              uint64_t snapshot_seq, std::weak_ptr<void> db_alive)
      : db_(db),
        db_alive_(std::move(db_alive)),
        txn_id_(txn_id),
        snapshot_(snapshot),
        snapshot_seq_(snapshot_seq),
        local_now_(snapshot + 1) {}

  /// Guards every operation: the transaction must still be active and
  /// the owning Database must still exist (FailedPrecondition after it
  /// was destroyed — a Transaction never dereferences a dead Database).
  Status CheckUsable() const;

  /// Pending per-atom view: what the atom will look like if this
  /// transaction commits. Lazily initialized from the committed state
  /// as of the snapshot.
  struct AtomOverlay {
    bool exists = false;  // has any version (committed or pending)
    bool live = false;
    Timestamp live_begin = kMinTimestamp;
    Timestamp last_end = kMinTimestamp;  // end of newest closed version
    TypeId type = kInvalidTypeId;
    std::vector<Value> attrs;  // of the live version
  };

  /// Pending link-pair view.
  struct LinkOverlay {
    bool open = false;
    Timestamp open_begin = kMinTimestamp;
    Timestamp last_end = kMinTimestamp;
    bool initialized_from_store = false;
  };

  /// Pulls the transaction-local clock past a buffered stamp (the
  /// per-transaction mirror of Database::ObserveTimestamp).
  void ObserveLocal(Timestamp from) {
    if (from >= local_now_) local_now_ = from + 1;
  }

  Result<AtomOverlay*> OverlayFor(const std::string& type_name, AtomId id,
                                  Timestamp as_of);
  Result<LinkOverlay*> LinkOverlayFor(const std::string& link_name,
                                      LinkTypeId link_id, AtomId from,
                                      AtomId to, Timestamp as_of);

  Database* db_;
  /// Expires when the owning Database is destroyed; checked before
  /// every dereference of db_.
  std::weak_ptr<void> db_alive_;
  uint64_t txn_id_;
  Timestamp snapshot_ = kMinTimestamp;
  /// Commit sequence the snapshot covers (conflict-window lower bound).
  uint64_t snapshot_seq_ = 0;
  /// Provisional NOW for buffered operations (see local_now()).
  Timestamp local_now_ = kMinTimestamp;
  bool active_ = true;
  std::vector<WalOp> ops_;
  std::map<AtomId, AtomOverlay> atoms_;
  std::map<std::tuple<LinkTypeId, AtomId, AtomId>, LinkOverlay> links_;
};

}  // namespace tcob

#endif  // TCOB_DB_TRANSACTION_H_
