file(REMOVE_RECURSE
  "libtcob.a"
)
