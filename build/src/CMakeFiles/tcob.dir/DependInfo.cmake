
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/tcob.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/tcob.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/tcob.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/tcob.dir/common/coding.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tcob.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tcob.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tcob.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tcob.dir/common/status.cc.o.d"
  "/root/repo/src/common/temp_dir.cc" "src/CMakeFiles/tcob.dir/common/temp_dir.cc.o" "gcc" "src/CMakeFiles/tcob.dir/common/temp_dir.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/tcob.dir/db/database.cc.o" "gcc" "src/CMakeFiles/tcob.dir/db/database.cc.o.d"
  "/root/repo/src/db/dump.cc" "src/CMakeFiles/tcob.dir/db/dump.cc.o" "gcc" "src/CMakeFiles/tcob.dir/db/dump.cc.o.d"
  "/root/repo/src/db/transaction.cc" "src/CMakeFiles/tcob.dir/db/transaction.cc.o" "gcc" "src/CMakeFiles/tcob.dir/db/transaction.cc.o.d"
  "/root/repo/src/index/attr_index.cc" "src/CMakeFiles/tcob.dir/index/attr_index.cc.o" "gcc" "src/CMakeFiles/tcob.dir/index/attr_index.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/tcob.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/tcob.dir/index/btree.cc.o.d"
  "/root/repo/src/mad/diff.cc" "src/CMakeFiles/tcob.dir/mad/diff.cc.o" "gcc" "src/CMakeFiles/tcob.dir/mad/diff.cc.o.d"
  "/root/repo/src/mad/link_store.cc" "src/CMakeFiles/tcob.dir/mad/link_store.cc.o" "gcc" "src/CMakeFiles/tcob.dir/mad/link_store.cc.o.d"
  "/root/repo/src/mad/materializer.cc" "src/CMakeFiles/tcob.dir/mad/materializer.cc.o" "gcc" "src/CMakeFiles/tcob.dir/mad/materializer.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/tcob.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/tcob.dir/query/executor.cc.o.d"
  "/root/repo/src/query/expr_eval.cc" "src/CMakeFiles/tcob.dir/query/expr_eval.cc.o" "gcc" "src/CMakeFiles/tcob.dir/query/expr_eval.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/tcob.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/tcob.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/tcob.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/tcob.dir/query/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/tcob.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/tcob.dir/query/planner.cc.o.d"
  "/root/repo/src/query/result_set.cc" "src/CMakeFiles/tcob.dir/query/result_set.cc.o" "gcc" "src/CMakeFiles/tcob.dir/query/result_set.cc.o.d"
  "/root/repo/src/record/record_codec.cc" "src/CMakeFiles/tcob.dir/record/record_codec.cc.o" "gcc" "src/CMakeFiles/tcob.dir/record/record_codec.cc.o.d"
  "/root/repo/src/record/value.cc" "src/CMakeFiles/tcob.dir/record/value.cc.o" "gcc" "src/CMakeFiles/tcob.dir/record/value.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tcob.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tcob.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/tcob.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/tcob.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/tcob.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/tcob.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/tcob.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/tcob.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/time/calendar.cc" "src/CMakeFiles/tcob.dir/time/calendar.cc.o" "gcc" "src/CMakeFiles/tcob.dir/time/calendar.cc.o.d"
  "/root/repo/src/time/interval.cc" "src/CMakeFiles/tcob.dir/time/interval.cc.o" "gcc" "src/CMakeFiles/tcob.dir/time/interval.cc.o.d"
  "/root/repo/src/time/temporal_element.cc" "src/CMakeFiles/tcob.dir/time/temporal_element.cc.o" "gcc" "src/CMakeFiles/tcob.dir/time/temporal_element.cc.o.d"
  "/root/repo/src/time/timeline.cc" "src/CMakeFiles/tcob.dir/time/timeline.cc.o" "gcc" "src/CMakeFiles/tcob.dir/time/timeline.cc.o.d"
  "/root/repo/src/tstore/integrated_store.cc" "src/CMakeFiles/tcob.dir/tstore/integrated_store.cc.o" "gcc" "src/CMakeFiles/tcob.dir/tstore/integrated_store.cc.o.d"
  "/root/repo/src/tstore/separated_store.cc" "src/CMakeFiles/tcob.dir/tstore/separated_store.cc.o" "gcc" "src/CMakeFiles/tcob.dir/tstore/separated_store.cc.o.d"
  "/root/repo/src/tstore/snapshot_store.cc" "src/CMakeFiles/tcob.dir/tstore/snapshot_store.cc.o" "gcc" "src/CMakeFiles/tcob.dir/tstore/snapshot_store.cc.o.d"
  "/root/repo/src/tstore/store_factory.cc" "src/CMakeFiles/tcob.dir/tstore/store_factory.cc.o" "gcc" "src/CMakeFiles/tcob.dir/tstore/store_factory.cc.o.d"
  "/root/repo/src/tstore/temporal_store.cc" "src/CMakeFiles/tcob.dir/tstore/temporal_store.cc.o" "gcc" "src/CMakeFiles/tcob.dir/tstore/temporal_store.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/tcob.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/tcob.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/wal.cc" "src/CMakeFiles/tcob.dir/wal/wal.cc.o" "gcc" "src/CMakeFiles/tcob.dir/wal/wal.cc.o.d"
  "/root/repo/src/workload/company.cc" "src/CMakeFiles/tcob.dir/workload/company.cc.o" "gcc" "src/CMakeFiles/tcob.dir/workload/company.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
