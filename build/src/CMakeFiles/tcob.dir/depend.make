# Empty dependencies file for tcob.
# This may be replaced when dependencies are built.
