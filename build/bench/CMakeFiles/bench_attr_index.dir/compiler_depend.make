# Empty compiler generated dependencies file for bench_attr_index.
# This may be replaced when dependencies are built.
