file(REMOVE_RECURSE
  "CMakeFiles/bench_attr_index.dir/bench_attr_index.cc.o"
  "CMakeFiles/bench_attr_index.dir/bench_attr_index.cc.o.d"
  "bench_attr_index"
  "bench_attr_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attr_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
