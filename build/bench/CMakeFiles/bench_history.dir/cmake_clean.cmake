file(REMOVE_RECURSE
  "CMakeFiles/bench_history.dir/bench_history.cc.o"
  "CMakeFiles/bench_history.dir/bench_history.cc.o.d"
  "bench_history"
  "bench_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
