# Empty dependencies file for bench_vacuum.
# This may be replaced when dependencies are built.
