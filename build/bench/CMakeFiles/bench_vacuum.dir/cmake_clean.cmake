file(REMOVE_RECURSE
  "CMakeFiles/bench_vacuum.dir/bench_vacuum.cc.o"
  "CMakeFiles/bench_vacuum.dir/bench_vacuum.cc.o.d"
  "bench_vacuum"
  "bench_vacuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vacuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
