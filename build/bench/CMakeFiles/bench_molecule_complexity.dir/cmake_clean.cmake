file(REMOVE_RECURSE
  "CMakeFiles/bench_molecule_complexity.dir/bench_molecule_complexity.cc.o"
  "CMakeFiles/bench_molecule_complexity.dir/bench_molecule_complexity.cc.o.d"
  "bench_molecule_complexity"
  "bench_molecule_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_molecule_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
