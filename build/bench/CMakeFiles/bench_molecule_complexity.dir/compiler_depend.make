# Empty compiler generated dependencies file for bench_molecule_complexity.
# This may be replaced when dependencies are built.
