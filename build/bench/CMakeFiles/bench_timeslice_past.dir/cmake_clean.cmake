file(REMOVE_RECURSE
  "CMakeFiles/bench_timeslice_past.dir/bench_timeslice_past.cc.o"
  "CMakeFiles/bench_timeslice_past.dir/bench_timeslice_past.cc.o.d"
  "bench_timeslice_past"
  "bench_timeslice_past.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeslice_past.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
