file(REMOVE_RECURSE
  "CMakeFiles/bench_version_index.dir/bench_version_index.cc.o"
  "CMakeFiles/bench_version_index.dir/bench_version_index.cc.o.d"
  "bench_version_index"
  "bench_version_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_version_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
