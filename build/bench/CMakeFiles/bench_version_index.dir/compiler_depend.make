# Empty compiler generated dependencies file for bench_version_index.
# This may be replaced when dependencies are built.
