file(REMOVE_RECURSE
  "CMakeFiles/bench_timeslice_current.dir/bench_timeslice_current.cc.o"
  "CMakeFiles/bench_timeslice_current.dir/bench_timeslice_current.cc.o.d"
  "bench_timeslice_current"
  "bench_timeslice_current.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeslice_current.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
