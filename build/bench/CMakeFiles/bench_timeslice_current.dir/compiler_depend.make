# Empty compiler generated dependencies file for bench_timeslice_current.
# This may be replaced when dependencies are built.
