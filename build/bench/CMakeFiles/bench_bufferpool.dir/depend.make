# Empty dependencies file for bench_bufferpool.
# This may be replaced when dependencies are built.
