# Empty compiler generated dependencies file for cad_assembly.
# This may be replaced when dependencies are built.
