file(REMOVE_RECURSE
  "CMakeFiles/cad_assembly.dir/cad_assembly.cpp.o"
  "CMakeFiles/cad_assembly.dir/cad_assembly.cpp.o.d"
  "cad_assembly"
  "cad_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
