# Empty compiler generated dependencies file for sensor_log.
# This may be replaced when dependencies are built.
