file(REMOVE_RECURSE
  "CMakeFiles/sensor_log.dir/sensor_log.cpp.o"
  "CMakeFiles/sensor_log.dir/sensor_log.cpp.o.d"
  "sensor_log"
  "sensor_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
