file(REMOVE_RECURSE
  "CMakeFiles/company_history.dir/company_history.cpp.o"
  "CMakeFiles/company_history.dir/company_history.cpp.o.d"
  "company_history"
  "company_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
