# Empty compiler generated dependencies file for company_history.
# This may be replaced when dependencies are built.
