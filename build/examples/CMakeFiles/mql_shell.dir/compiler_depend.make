# Empty compiler generated dependencies file for mql_shell.
# This may be replaced when dependencies are built.
