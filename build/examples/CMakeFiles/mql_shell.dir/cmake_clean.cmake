file(REMOVE_RECURSE
  "CMakeFiles/mql_shell.dir/mql_shell.cpp.o"
  "CMakeFiles/mql_shell.dir/mql_shell.cpp.o.d"
  "mql_shell"
  "mql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
