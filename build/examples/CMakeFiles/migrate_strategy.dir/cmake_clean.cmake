file(REMOVE_RECURSE
  "CMakeFiles/migrate_strategy.dir/migrate_strategy.cpp.o"
  "CMakeFiles/migrate_strategy.dir/migrate_strategy.cpp.o.d"
  "migrate_strategy"
  "migrate_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
