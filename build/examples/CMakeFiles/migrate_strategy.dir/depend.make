# Empty dependencies file for migrate_strategy.
# This may be replaced when dependencies are built.
