
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_test.cc" "tests/CMakeFiles/tcob_tests.dir/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/aggregate_test.cc.o.d"
  "/root/repo/tests/attr_index_test.cc" "tests/CMakeFiles/tcob_tests.dir/attr_index_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/attr_index_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/tcob_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/buffer_pool_test.cc" "tests/CMakeFiles/tcob_tests.dir/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/buffer_pool_test.cc.o.d"
  "/root/repo/tests/calendar_test.cc" "tests/CMakeFiles/tcob_tests.dir/calendar_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/calendar_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/tcob_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/coding_test.cc" "tests/CMakeFiles/tcob_tests.dir/coding_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/coding_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/tcob_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crash_recovery_test.cc" "tests/CMakeFiles/tcob_tests.dir/crash_recovery_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/crash_recovery_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/tcob_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/diff_test.cc" "tests/CMakeFiles/tcob_tests.dir/diff_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/diff_test.cc.o.d"
  "/root/repo/tests/dump_test.cc" "tests/CMakeFiles/tcob_tests.dir/dump_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/dump_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/tcob_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/expr_eval_test.cc" "tests/CMakeFiles/tcob_tests.dir/expr_eval_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/expr_eval_test.cc.o.d"
  "/root/repo/tests/heap_file_test.cc" "tests/CMakeFiles/tcob_tests.dir/heap_file_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/heap_file_test.cc.o.d"
  "/root/repo/tests/inline_molecule_test.cc" "tests/CMakeFiles/tcob_tests.dir/inline_molecule_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/inline_molecule_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tcob_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/interval_test.cc" "tests/CMakeFiles/tcob_tests.dir/interval_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/interval_test.cc.o.d"
  "/root/repo/tests/link_store_test.cc" "tests/CMakeFiles/tcob_tests.dir/link_store_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/link_store_test.cc.o.d"
  "/root/repo/tests/materializer_test.cc" "tests/CMakeFiles/tcob_tests.dir/materializer_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/materializer_test.cc.o.d"
  "/root/repo/tests/orderby_test.cc" "tests/CMakeFiles/tcob_tests.dir/orderby_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/orderby_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/tcob_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/tcob_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/slotted_page_test.cc" "tests/CMakeFiles/tcob_tests.dir/slotted_page_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/slotted_page_test.cc.o.d"
  "/root/repo/tests/temporal_element_test.cc" "tests/CMakeFiles/tcob_tests.dir/temporal_element_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/temporal_element_test.cc.o.d"
  "/root/repo/tests/timeline_test.cc" "tests/CMakeFiles/tcob_tests.dir/timeline_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/timeline_test.cc.o.d"
  "/root/repo/tests/transaction_test.cc" "tests/CMakeFiles/tcob_tests.dir/transaction_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/transaction_test.cc.o.d"
  "/root/repo/tests/tstore_test.cc" "tests/CMakeFiles/tcob_tests.dir/tstore_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/tstore_test.cc.o.d"
  "/root/repo/tests/vacuum_test.cc" "tests/CMakeFiles/tcob_tests.dir/vacuum_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/vacuum_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/tcob_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/wal_test.cc" "tests/CMakeFiles/tcob_tests.dir/wal_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/wal_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/tcob_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/tcob_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
