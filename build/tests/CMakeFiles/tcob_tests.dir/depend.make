# Empty dependencies file for tcob_tests.
# This may be replaced when dependencies are built.
