// fuzz_sim — deterministic model-based simulation fuzzer.
//
// From each 64-bit seed, generates a random schema + interleaved op
// stream (DML, link rewires, checkpoints, reopens, power cuts, vacuums)
// and a random query mix — some queries governed by random deadlines, a
// cancel from a second thread, or injected transient read EIOs the
// retry policy absorbs — then executes everything against the real
// Database (3 storage strategies x parallelism {1,4}) and the in-memory
// reference model, comparing results, error codes, vacuum counts, id
// allocation, integrity and trace counters at every step. Divergences
// are minimized with a built-in delta-debugging shrinker.
//
// stdout carries exactly one deterministic JSON summary line per seed
// (bit-identical across runs of the same seed); progress and failure
// traces go to stderr and --artifact_dir.
//
//   fuzz_sim --seed=42                 # one seed, full matrix
//   fuzz_sim --seeds=0:1000 --ops=40   # smoke sweep
//   fuzz_sim --seed=7 --plant_bug      # self-test: must catch the bug
//
// Exit code: 0 = all seeds passed (with --plant_bug: the bug was
// caught), 1 = divergence found (with --plant_bug: missed), 2 = usage.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/harness.h"
#include "sim/shrink.h"
#include "sim/workload.h"

namespace {

struct Args {
  uint64_t seed_begin = 0;
  uint64_t seed_end = 1;  // exclusive
  size_t ops = 300;
  bool cuts = true;
  bool vacuum = true;
  bool tiering = true;
  bool cancel = true;
  bool transient_io = true;
  bool txns = true;
  bool shrink = true;
  bool cursor_check = true;
  bool plant_bug = false;
  std::string artifact_dir;
};

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: fuzz_sim [--seed=N | --seeds=A:B] [--ops=N] [--no_cuts]\n"
      "                [--no_vacuum] [--no_tiering] [--no_cancel]\n"
      "                [--no_transient_io] [--no_txns] [--no_shrink]\n"
      "                [--no_cursor_check] [--plant_bug]\n"
      "                [--artifact_dir=DIR]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0) {
      if (!ParseUint(a + 7, &args->seed_begin)) return false;
      args->seed_end = args->seed_begin + 1;
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      std::string range(a + 8);
      size_t colon = range.find(':');
      if (colon == std::string::npos) return false;
      if (!ParseUint(range.substr(0, colon).c_str(), &args->seed_begin) ||
          !ParseUint(range.substr(colon + 1).c_str(), &args->seed_end)) {
        return false;
      }
      if (args->seed_end <= args->seed_begin) return false;
    } else if (std::strncmp(a, "--ops=", 6) == 0) {
      uint64_t n;
      if (!ParseUint(a + 6, &n) || n == 0) return false;
      args->ops = static_cast<size_t>(n);
    } else if (std::strcmp(a, "--no_cuts") == 0) {
      args->cuts = false;
    } else if (std::strcmp(a, "--no_vacuum") == 0) {
      args->vacuum = false;
    } else if (std::strcmp(a, "--no_tiering") == 0) {
      args->tiering = false;
    } else if (std::strcmp(a, "--no_cancel") == 0) {
      args->cancel = false;
    } else if (std::strcmp(a, "--no_transient_io") == 0) {
      args->transient_io = false;
    } else if (std::strcmp(a, "--no_txns") == 0) {
      args->txns = false;
    } else if (std::strcmp(a, "--no_shrink") == 0) {
      args->shrink = false;
    } else if (std::strcmp(a, "--no_cursor_check") == 0) {
      args->cursor_check = false;
    } else if (std::strcmp(a, "--plant_bug") == 0) {
      args->plant_bug = true;
    } else if (std::strncmp(a, "--artifact_dir=", 15) == 0) {
      args->artifact_dir = a + 15;
    } else {
      return false;
    }
  }
  return true;
}

void WriteArtifact(const Args& args, const tcob::sim::ShrinkResult& shrunk) {
  if (args.artifact_dir.empty()) return;
  std::string path = args.artifact_dir + "/seed-" +
                     std::to_string(shrunk.workload.seed) + ".trace";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fuzz_sim: cannot write artifact %s\n",
                 path.c_str());
    return;
  }
  std::string body = "divergence: " + shrunk.failure.divergence + "\n\n" +
                     tcob::sim::WorkloadToString(shrunk.workload) +
                     "\nreproduce: fuzz_sim --seed=" +
                     std::to_string(shrunk.workload.seed) +
                     " --ops=" + std::to_string(args.ops) +
                     (args.cuts ? "" : " --no_cuts") +
                     (args.vacuum ? "" : " --no_vacuum") +
                     (args.tiering ? "" : " --no_tiering") +
                     (args.cancel ? "" : " --no_cancel") +
                     (args.transient_io ? "" : " --no_transient_io") +
                     (args.txns ? "" : " --no_txns") +
                     (args.cursor_check ? "" : " --no_cursor_check") + "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "fuzz_sim: artifact written to %s\n", path.c_str());

  // The failing instance's flight-recorder dump rides along: open it in
  // Perfetto / chrome://tracing to see what the engine was doing when
  // the divergence surfaced.
  if (!shrunk.failure.failure_trace_json.empty()) {
    std::string trace_path = args.artifact_dir + "/seed-" +
                             std::to_string(shrunk.workload.seed) +
                             "-trace.json";
    FILE* tf = std::fopen(trace_path.c_str(), "w");
    if (tf == nullptr) {
      std::fprintf(stderr, "fuzz_sim: cannot write trace dump %s\n",
                   trace_path.c_str());
      return;
    }
    std::fwrite(shrunk.failure.failure_trace_json.data(), 1,
                shrunk.failure.failure_trace_json.size(), tf);
    std::fclose(tf);
    std::fprintf(stderr, "fuzz_sim: trace dump written to %s\n",
                 trace_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();

  tcob::sim::GenOptions gen;
  gen.num_ops = args.ops;
  gen.enable_cuts = args.cuts;
  gen.enable_vacuum = args.vacuum;
  gen.enable_tiering = args.tiering;
  gen.enable_cancel = args.cancel;
  gen.enable_transient_io = args.transient_io;
  gen.enable_txns = args.txns;

  tcob::sim::RunOptions run;
  run.bug = args.plant_bug ? tcob::sim::ModelBug::kIgnoreDeletes
                           : tcob::sim::ModelBug::kNone;
  run.check_cursors = args.cursor_check;

  uint64_t failures = 0;
  for (uint64_t seed = args.seed_begin; seed < args.seed_end; ++seed) {
    tcob::sim::SimWorkload w = tcob::sim::GenerateWorkload(seed, gen);
    tcob::sim::RunResult result = tcob::sim::RunWorkload(w, run);
    std::printf("%s\n", result.summary_json.c_str());
    std::fflush(stdout);
    if (result.ok) continue;
    ++failures;
    std::fprintf(stderr, "fuzz_sim: seed %" PRIu64 " DIVERGED: %s\n", seed,
                 result.divergence.c_str());
    if (args.shrink) {
      tcob::sim::RunOptions shrink_run = run;
      tcob::sim::ShrinkResult shrunk =
          tcob::sim::ShrinkWorkload(w, shrink_run);
      std::fprintf(stderr,
                   "fuzz_sim: shrunk to %zu op(s) in %zu harness run(s)\n",
                   shrunk.workload.ops.size(), shrunk.harness_runs);
      std::fprintf(stderr, "%s",
                   tcob::sim::WorkloadToString(shrunk.workload).c_str());
      std::fprintf(stderr, "fuzz_sim: minimized divergence: %s\n",
                   shrunk.failure.divergence.c_str());
      WriteArtifact(args, shrunk);
    }
  }

  if (args.plant_bug) {
    // Self-test inversion: the harness MUST catch the planted model bug
    // (at least one seed diverging proves the oracle has teeth).
    if (failures > 0) {
      std::fprintf(stderr,
                   "fuzz_sim: planted bug caught on %" PRIu64 " seed(s)\n",
                   failures);
      return 0;
    }
    std::fprintf(stderr, "fuzz_sim: planted bug NOT caught\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
