#!/usr/bin/env python3
"""Validate a TCOB flight-recorder dump (Chrome trace_event JSON).

Checks, in order:
  1. The file parses as JSON and is an object with "displayTimeUnit"
     and a "traceEvents" list.
  2. Every event is an object carrying the required keys for its phase
     ("name", "ph", "pid", "tid", and "ts" for non-metadata events).
  3. Timestamps are non-decreasing in emission order (metadata "M"
     events are exempt — they carry no ts).
  4. Duration events balance: within each (pid, tid) lane, every "E"
     closes the most recent open "B" with the same name (strict LIFO),
     and no "B" is left open at the end of the stream.

Dependency-free (stdlib json only) so it can run in any CI job.
Exit status 0 on success, 1 with a message on the first failure.

Usage: validate_trace_json.py FILE [FILE...]
"""

import json
import sys


class ValidationError(Exception):
    pass


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise ValidationError("cannot parse %s: %s" % (path, e))

    if not isinstance(doc, dict):
        raise ValidationError("top level must be a JSON object")
    if "displayTimeUnit" not in doc:
        raise ValidationError("missing displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValidationError("traceEvents must be a list")

    last_ts = None
    stacks = {}  # (pid, tid) -> [name, ...] of open B spans
    counts = {"B": 0, "E": 0, "i": 0, "M": 0}
    for idx, ev in enumerate(events):
        where = "traceEvents[%d]" % idx
        if not isinstance(ev, dict):
            raise ValidationError("%s is not an object" % where)
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValidationError("%s missing %r" % (where, key))
        ph = ev["ph"]
        if ph not in ("B", "E", "i", "M"):
            raise ValidationError("%s has unknown ph %r" % (where, ph))
        counts[ph] += 1
        if ph == "M":
            continue  # metadata: no ts, no ordering constraint

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValidationError("%s missing numeric ts" % where)
        if last_ts is not None and ts < last_ts:
            raise ValidationError(
                "%s ts %s went backwards (previous %s)" % (where, ts, last_ts))
        last_ts = ts

        lane = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks.setdefault(lane, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ValidationError(
                    "%s closes %r on lane %s with no open span"
                    % (where, ev["name"], lane))
            if stack[-1] != ev["name"]:
                raise ValidationError(
                    "%s closes %r but lane %s has %r open"
                    % (where, ev["name"], lane, stack[-1]))
            stack.pop()

    for lane, stack in stacks.items():
        if stack:
            raise ValidationError(
                "lane %s left spans open at end of stream: %s" % (lane, stack))

    return counts


def main(argv):
    if len(argv) < 2:
        sys.stderr.write("usage: validate_trace_json.py FILE [FILE...]\n")
        return 1
    for path in argv[1:]:
        try:
            counts = validate(path)
        except ValidationError as e:
            sys.stderr.write("%s: INVALID: %s\n" % (path, e))
            return 1
        total = sum(counts.values())
        print("%s: OK (%d events: %d spans, %d instants, %d metadata)"
              % (path, total, counts["B"], counts["i"], counts["M"]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
