#!/usr/bin/env python3
"""Validate bench JSON artifacts against bench/bench_schema.json.

Dependency-free validator for the JSON Schema (draft-07) subset the
bench schema actually uses: type, required, properties,
additionalProperties (bool or schema), items, minItems, minimum, enum.

Usage: validate_bench_json.py SCHEMA ARTIFACT [ARTIFACT...] \
           [--require-nonzero=FIELD[,FIELD...]]
Exits non-zero (listing every violation) if any artifact is invalid.

--require-nonzero: each named field must appear with a value > 0 in at
least one benchmark record of every artifact — as a record-level field
or inside "counters". Used by CI smoke runs to assert that new
instrumentation (e.g. first_row_micros, peak_rss_bytes) actually fires.
"""

import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, expected):
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    return isinstance(value, _TYPES[expected])


def validate(value, schema, path="$"):
    """Returns a list of human-readable violation strings."""
    errors = []

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, t) for t in allowed):
            errors.append("%s: expected type %s, got %s" %
                          (path, "/".join(allowed), type(value).__name__))
            return errors  # structural checks below would be nonsense

    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: value %r not in enum %r" %
                      (path, value, schema["enum"]))

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append("%s: value %r below minimum %r" %
                          (path, value, schema["minimum"]))

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required property %r" % (path, key))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            sub_path = "%s.%s" % (path, key)
            if key in props:
                errors.extend(validate(sub, props[key], sub_path))
            elif extra is False:
                errors.append("%s: unexpected property %r" % (path, key))
            elif isinstance(extra, dict):
                errors.extend(validate(sub, extra, sub_path))

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append("%s: %d items, expected at least %d" %
                          (path, len(value), schema["minItems"]))
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                errors.extend(validate(sub, items, "%s[%d]" % (path, i)))

    return errors


def _nonzero_violations(value, fields):
    """Fields (record-level or counter) that are never > 0 in any record."""
    missing = []
    records = value.get("benchmarks", [])
    for field in fields:
        found = False
        for rec in records:
            v = rec.get(field)
            if v is None:
                v = rec.get("counters", {}).get(field)
            if isinstance(v, (int, float)) and not isinstance(v, bool) \
                    and v > 0:
                found = True
                break
        if not found:
            missing.append(field)
    return missing


def main(argv):
    require_nonzero = []
    positional = [argv[0]] if argv else []
    for arg in argv[1:]:
        if arg.startswith("--require-nonzero="):
            spec = arg.split("=", 1)[1]
            require_nonzero.extend(f for f in spec.split(",") if f)
        else:
            positional.append(arg)
    if len(positional) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(positional[1], encoding="utf-8") as f:
        schema = json.load(f)
    failed = False
    for artifact in positional[2:]:
        try:
            with open(artifact, encoding="utf-8") as f:
                value = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print("%s: unreadable: %s" % (artifact, e))
            failed = True
            continue
        errors = validate(value, schema)
        for field in _nonzero_violations(value, require_nonzero):
            errors.append(
                "$: field %r is not > 0 in any benchmark record" % field)
        if errors:
            failed = True
            print("%s: INVALID" % artifact)
            for err in errors:
                print("  " + err)
        else:
            runs = len(value.get("benchmarks", []))
            print("%s: ok (%d runs)" % (artifact, runs))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
